package liglo

import (
	"fmt"

	"bestpeer/internal/wire"
)

// Ring-mode payload versions this build emits. Both bodies lead with a
// version field so they can grow without new kinds: decoders tolerate
// trailing bytes from newer senders (the Depart precedent).
const (
	ringRedirectVersion  = 1
	ringReplicateVersion = 1
)

// maxRingRecords bounds a decoded replication batch.
const maxRingRecords = 1 << 16

// redirectMsg (KindRingRedirect) answers a request for a BPID whose ring
// key this server does not own: retry at Addr, the owning server.
type redirectMsg struct {
	Version uint64
	Addr    string // the owning server
	Key     uint64 // the BPID's ring position, for diagnostics
}

func encodeRedirectMsg(m *redirectMsg) []byte {
	var e wire.Encoder
	e.Uvarint(m.Version)
	e.String(m.Addr)
	e.Uvarint(m.Key)
	return e.Bytes()
}

func decodeRedirectMsg(b []byte) (*redirectMsg, error) {
	d := wire.NewDecoder(b)
	m := &redirectMsg{Version: d.Uvarint()}
	m.Addr = d.String()
	m.Key = d.Uvarint()
	if m.Version > ringRedirectVersion {
		if err := d.Err(); err != nil {
			return nil, fmt.Errorf("%w: redirect: %v", ErrBadRequest, err)
		}
		return m, nil
	}
	if err := d.Finish(); err != nil {
		return nil, fmt.Errorf("%w: redirect: %v", ErrBadRequest, err)
	}
	return m, nil
}

// RingRecord is one replicated member entry: the full resolution state a
// successor needs to serve lookups for a BPID when its issuer is gone.
type RingRecord struct {
	ID       wire.BPID
	Addr     string
	Online   bool
	Departed bool
}

func encodeRingRecord(e *wire.Encoder, r RingRecord) {
	e.BPID(r.ID)
	e.String(r.Addr)
	e.Bool(r.Online)
	e.Bool(r.Departed)
}

func decodeRingRecord(d *wire.Decoder) RingRecord {
	return RingRecord{ID: d.BPID(), Addr: d.String(), Online: d.Bool(), Departed: d.Bool()}
}

// replicateMsg (KindRingReplicate) ships member records to a successor —
// the successor-list replication that keeps every BPID resolvable after
// its issuing server leaves or crashes.
type replicateMsg struct {
	Version uint64
	From    string // sending server
	Records []RingRecord
}

func encodeReplicateMsg(m *replicateMsg) []byte {
	var e wire.Encoder
	e.Uvarint(m.Version)
	e.String(m.From)
	e.Uvarint(uint64(len(m.Records)))
	for _, r := range m.Records {
		encodeRingRecord(&e, r)
	}
	return e.Bytes()
}

func decodeReplicateMsg(b []byte) (*replicateMsg, error) {
	d := wire.NewDecoder(b)
	m := &replicateMsg{Version: d.Uvarint()}
	m.From = d.String()
	n := d.Uvarint()
	if n > maxRingRecords {
		return nil, fmt.Errorf("%w: replicate: %d records", ErrBadRequest, n)
	}
	for i := uint64(0); i < n; i++ {
		m.Records = append(m.Records, decodeRingRecord(d))
	}
	if m.Version > ringReplicateVersion {
		if err := d.Err(); err != nil {
			return nil, fmt.Errorf("%w: replicate: %v", ErrBadRequest, err)
		}
		return m, nil
	}
	if err := d.Finish(); err != nil {
		return nil, fmt.Errorf("%w: replicate: %v", ErrBadRequest, err)
	}
	return m, nil
}

// replicateOK (KindRingReplicateOK) acknowledges a replication batch.
type replicateOK struct {
	Version uint64
	Err     string
}

func encodeReplicateOK(m *replicateOK) []byte {
	var e wire.Encoder
	e.Uvarint(m.Version)
	e.String(m.Err)
	return e.Bytes()
}

func decodeReplicateOK(b []byte) (*replicateOK, error) {
	d := wire.NewDecoder(b)
	m := &replicateOK{Version: d.Uvarint()}
	m.Err = d.String()
	if m.Version > ringReplicateVersion {
		if err := d.Err(); err != nil {
			return nil, fmt.Errorf("%w: replicate-ok: %v", ErrBadRequest, err)
		}
		return m, nil
	}
	if err := d.Finish(); err != nil {
		return nil, fmt.Errorf("%w: replicate-ok: %v", ErrBadRequest, err)
	}
	return m, nil
}
