package bench

import (
	"sort"
	"time"

	"bestpeer/internal/netsim"
	"bestpeer/internal/obs"
	"bestpeer/internal/qroute"
	"bestpeer/internal/reconfig"
	"bestpeer/internal/topology"
	"bestpeer/internal/wire"
)

// bpSim is the simulated BestPeer protocol: agents cloned to all direct
// peers, duplicate suppression, class shipping on cold nodes, execution
// at the peer's site, and answers returned directly to the base. With a
// non-static strategy the base reconfigures between rounds (BPR); with
// reconfig.Static it is the paper's BPS.
type bpSim struct {
	p   Params
	tp  *topology.Topology
	sim *netsim.Sim
	net *netsim.Network

	peers       [][]int // mutable copy of the adjacency (base's row changes)
	classReady  []bool
	wantQueued  [][]int  // per node: downstream nodes waiting for the class
	pendingHops []int    // per node: hop count of the agent parked for a class (-1 = none)
	pendingVia  []string // per node: entry neighbor of the parked agent

	// qr, when non-nil, is the base's answer cache + learned routing
	// index — the same engine a live node embeds. The simulation stamps
	// wire.QRoute on clones and result envelopes exactly like the live
	// message path, so routing is learned from the identical signal.
	qr *qroute.Engine

	// Per-round state.
	seen    []bool
	events  []Event
	baseAt  string
	started time.Duration

	// journal, when set, receives the base node's structured events —
	// the same pipeline a live node feeds — so the convergence timeline
	// is assembled from events, not from simulator internals. qid is the
	// current round's query id; strategyName tags query-issued events.
	journal      *obs.Journal
	qid          string
	strategyName string
}

// resultBody encodes (hits, origin node) for simulated result messages.
func resultBody(hits, node int) []byte {
	var e wire.Encoder
	e.Uvarint(uint64(hits))
	e.Uvarint(uint64(node))
	return e.Bytes()
}

func resultFromBody(b []byte) (hits, node int) {
	d := wire.NewDecoder(b)
	return int(d.Uvarint()), int(d.Uvarint())
}

// nodeBody tags class-want messages with the requester index.
func nodeBody(i int) []byte {
	var e wire.Encoder
	e.Uvarint(uint64(i))
	return e.Bytes()
}

func nodeFromBody(b []byte) int {
	d := wire.NewDecoder(b)
	return int(d.Uvarint())
}

func newBPSim(tp *topology.Topology, p Params) *bpSim {
	p = p.withDefaults()
	s := netsim.NewSim()
	net := netsim.NewNetwork(s, netsim.Link{Latency: p.Cost.Latency, Bandwidth: p.Cost.Bandwidth})
	net.UseSharedMedium()
	b := &bpSim{
		p: p, tp: tp, sim: s, net: net,
		peers:      make([][]int, tp.N),
		classReady: make([]bool, tp.N),
		wantQueued: make([][]int, tp.N),
		baseAt:     nodeAddr(tp.Base),
	}
	for i := 0; i < tp.N; i++ {
		b.peers[i] = append([]int(nil), tp.Peers(i)...)
		b.classReady[i] = !p.ColdStart // standard classes ship with the node software
		i := i
		h := net.AddHost(nodeAddr(i), netsim.HostConfig{Threads: p.Threads})
		h.SetHandler(func(env *wire.Envelope) { b.handle(i, env) })
	}
	b.classReady[tp.Base] = true // the base originates the agent class
	b.qr = qroute.NewEngine(p.QRoute, nil)
	return b
}

// simTime maps the simulated clock onto a wall-clock timeline for the
// qroute engine, whose TTLs and decay half-lives are wall-clock based.
// The fixed origin keeps runs deterministic.
func (b *bpSim) simTime() time.Time {
	return time.Unix(0, 0).UTC().Add(b.sim.Now())
}

// requestSize is the wire size of the travelling request: a full agent
// under code-shipping, a bare query under data-shipping.
func (b *bpSim) requestSize() int {
	if b.p.DataShip {
		return b.p.Cost.compressed(b.p.Cost.QuerySize)
	}
	return b.p.Cost.compressed(b.p.Cost.AgentSize)
}

func (b *bpSim) handle(node int, env *wire.Envelope) {
	switch env.Kind {
	case wire.KindAgent:
		b.handleAgent(node, env)
	case wire.KindResult:
		if node == b.tp.Base {
			hits, origin := resultFromBody(env.Body)
			if env.QRoute != nil && env.QRoute.Via != "" {
				b.qr.Observe([]string{b.p.Query}, env.QRoute.Via, hits,
					int(env.Hops), b.simTime())
			}
			record := func() {
				b.events = append(b.events, Event{
					Node:    origin,
					Answers: hits,
					Hops:    int(env.Hops),
					At:      b.sim.Now() - b.started,
				})
				b.journal.Append(obs.Event{
					Kind:  obs.EvAgentAnswered,
					Query: b.qid,
					Peer:  nodeAddr(origin),
					Hops:  int(env.Hops),
					Count: hits,
				})
			}
			if b.p.DataShip {
				// Data-shipping: the base must filter the shipped store
				// itself before the answers exist.
				b.net.Host(b.baseAt).Exec(b.p.Cost.scanCost(b.p.Spec.ObjectsPerNode), record)
			} else {
				record()
			}
		}
	case wire.KindClassWant:
		requester := nodeFromBody(env.Body)
		if b.classReady[node] {
			b.shipClass(node, requester)
		} else {
			b.wantQueued[node] = append(b.wantQueued[node], requester)
		}
	case wire.KindClassShip:
		b.installClass(node, env)
	}
}

func (b *bpSim) send(from, to int, kind wire.Kind, ttl, hops uint8, body []byte, size int) {
	env := &wire.Envelope{
		Kind: kind, ID: wire.NewMsgID(), TTL: ttl, Hops: hops,
		From: nodeAddr(from), To: nodeAddr(to), Body: body,
	}
	b.net.Send(nodeAddr(from), nodeAddr(to), env, size)
}

// handleAgent implements §3.1 at a simulated node.
func (b *bpSim) handleAgent(node int, env *wire.Envelope) {
	if env.Expired() {
		return // lifetime exhausted: the host drops the agent
	}
	if b.seen[node] {
		return
	}
	b.seen[node] = true

	// Clone-forward to direct peers except the previous hop (propagation
	// does not wait for class transfer or execution, but cloning and
	// enqueueing cost CPU at every intermediate host).
	var targets []int
	from := env.From
	for _, w := range b.peers[node] {
		if nodeAddr(w) != from {
			targets = append(targets, w)
		}
	}
	if len(targets) > 0 && env.TTL > 1 {
		host := b.net.Host(nodeAddr(node))
		host.Exec(b.p.Cost.ForwardCost, func() {
			for _, w := range targets {
				fwd := env.Forwarded(nodeAddr(node), nodeAddr(w))
				b.net.Send(nodeAddr(node), nodeAddr(w), fwd, b.requestSize())
			}
		})
	}

	via := ""
	if env.QRoute != nil {
		via = env.QRoute.Via
	}
	if !b.classReady[node] {
		// Ask the previous hop for the class, then execute on install.
		prev := nodeFromEnvAddr(env.From)
		b.send(node, prev, wire.KindClassWant, 1, 0, nodeBody(node), 64)
		// Remember this agent's hop count for execution after install.
		b.wantHops(node, int(env.Hops), via)
		return
	}
	b.execute(node, int(env.Hops), 0, via)
}

// wantHops stores the hop count and entry neighbor of the agent parked
// for a class.
func (b *bpSim) wantHops(node, hops int, via string) {
	for len(b.pendingHops) <= node {
		b.pendingHops = append(b.pendingHops, -1)
		b.pendingVia = append(b.pendingVia, "")
	}
	b.pendingHops[node] = hops
	b.pendingVia[node] = via
}

func (b *bpSim) shipClass(owner, requester int) {
	b.send(owner, requester, wire.KindClassShip, 1, 0, nil,
		b.p.Cost.compressed(b.p.Cost.ClassSize))
}

func (b *bpSim) installClass(node int, env *wire.Envelope) {
	if b.classReady[node] {
		return
	}
	b.classReady[node] = true
	// Serve queued downstream requests.
	for _, req := range b.wantQueued[node] {
		b.shipClass(node, req)
	}
	b.wantQueued[node] = nil
	if len(b.pendingHops) > node && b.pendingHops[node] >= 0 {
		hops, via := b.pendingHops[node], b.pendingVia[node]
		b.pendingHops[node] = -1
		b.pendingVia[node] = ""
		b.execute(node, hops, b.p.Cost.ClassInstall, via)
	}
}

// execute charges the agent reconstruction + scan on the node's CPU, then
// sends any answers directly to the base. In data-shipping mode the node
// does no filtering: it ships its whole store and the base does the work.
func (b *bpSim) execute(node, hops int, extra time.Duration, via string) {
	cost := b.p.Cost.AgentStartup + extra + b.p.Cost.scanCost(b.p.Spec.ObjectsPerNode)
	if b.p.DataShip {
		cost = b.p.Cost.QueryStartup // just package the data
	}
	host := b.net.Host(nodeAddr(node))
	host.Exec(cost, func() {
		if node == b.tp.Base {
			return
		}
		hits := b.p.Spec.MatchCount(node, b.p.Query)
		var size int
		if b.p.DataShip {
			// The entire store crosses the wire, matches or not.
			size = b.p.Cost.resultSize(b.p.Spec.ObjectsPerNode, b.p.Spec.ObjectSize, true)
		} else {
			if hits == 0 {
				return
			}
			size = b.p.Cost.resultSize(hits, b.p.Spec.ObjectSize, b.p.IncludeData)
		}
		// Results travel straight to the base — out-of-network return.
		// Like the live handler, the result echoes the agent's entry
		// neighbor so the base can credit its routing index.
		env := &wire.Envelope{
			Kind: wire.KindResult, ID: wire.NewMsgID(), TTL: 1,
			Hops: uint8(clampHops(hops)),
			From: nodeAddr(node), To: b.baseAt,
			Body: resultBody(hits, node),
		}
		if via != "" {
			env.QRoute = &wire.QRoute{Via: via}
		}
		b.net.Send(nodeAddr(node), b.baseAt, env, size)
	})
}

func clampHops(h int) int {
	if h > 255 {
		return 255
	}
	return h
}

func nodeFromEnvAddr(addr string) int {
	n := 0
	for i := 1; i < len(addr); i++ {
		n = n*10 + int(addr[i]-'0')
	}
	return n
}

// runRound issues one query from the base and runs to quiescence.
func (b *bpSim) runRound() RunResult {
	b.seen = make([]bool, b.tp.N)
	b.seen[b.tp.Base] = true
	b.events = nil
	b.started = b.sim.Now()
	b.qid = wire.NewMsgID().String()
	msgs0, bytes0, sent0 := b.net.MsgsDelivered, b.net.BytesDelivered, b.net.MsgsSent

	ttl := uint8(clampHops(b.p.TTL))
	targets := b.peers[b.tp.Base]
	route := "flood"
	var epoch uint64
	if b.qr != nil {
		now := b.simTime()
		if val, _, ok := b.qr.GetBase(b.p.Query, now); ok {
			// The whole round is served from the base's answer cache:
			// zero messages on the wire, same answer set as the run that
			// populated it (the epoch guarantees no mutation since).
			cached := val.([]Event)
			res := RunResult{
				Events: append([]Event(nil), cached...),
				Route:  "cached",
			}
			for _, e := range res.Events {
				res.TotalAnswers += e.Answers
			}
			b.journal.Append(obs.Event{
				Kind: obs.EvCacheHit, Query: b.qid,
				Reason: "base", Count: res.TotalAnswers,
			})
			return res
		}
		b.journal.Append(obs.Event{Kind: obs.EvCacheMiss, Query: b.qid})
		// Epoch before the round runs: a mutation racing the query makes
		// the entry stale rather than masking it.
		epoch = b.qr.Epoch()
		addrs := make([]string, len(targets))
		for i, w := range targets {
			addrs[i] = nodeAddr(w)
		}
		plan := b.qr.Select([]string{b.p.Query}, addrs, ttl, now)
		ttl = plan.TTL
		targets = make([]int, len(plan.Targets))
		for i, a := range plan.Targets {
			targets[i] = nodeFromEnvAddr(a)
		}
		switch {
		case plan.Selective:
			route = "selective"
			b.journal.Append(obs.Event{
				Kind: obs.EvSelectiveRoute, Query: b.qid,
				Count: len(plan.Targets), K: len(addrs), Hops: int(plan.TTL),
			})
		case plan.Explored:
			route = "explore"
		}
	}
	// Issued before the fan-out, like the live node, so the journal's
	// answered events always follow their query.
	b.journal.Append(obs.Event{
		Kind:     obs.EvQueryIssued,
		Query:    b.qid,
		Strategy: b.strategyName,
		Hops:     int(ttl),
		Count:    len(targets),
	})
	for _, w := range targets {
		env := &wire.Envelope{
			Kind: wire.KindAgent, ID: wire.NewMsgID(), TTL: ttl, Hops: 1,
			From: b.baseAt, To: nodeAddr(w),
		}
		if b.qr != nil {
			env.QRoute = &wire.QRoute{Via: nodeAddr(w)}
		}
		b.net.Send(b.baseAt, nodeAddr(w), env, b.requestSize())
	}
	b.sim.Run()

	res := RunResult{
		Events:   append([]Event(nil), b.events...),
		Msgs:     b.net.MsgsDelivered - msgs0,
		Bytes:    b.net.BytesDelivered - bytes0,
		MsgsSent: b.net.MsgsSent - sent0,
		Route:    route,
	}
	for _, e := range res.Events {
		res.TotalAnswers += e.Answers
		if e.At > res.Completion {
			res.Completion = e.At
		}
	}
	sort.Slice(res.Events, func(i, j int) bool { return res.Events[i].At < res.Events[j].At })
	if b.qr != nil {
		b.qr.PutBase(b.p.Query, append([]Event(nil), b.events...),
			len(b.events)*48, len(b.events) == 0, epoch, b.simTime())
	}
	b.journal.Append(obs.Event{Kind: obs.EvQueryCompleted, Query: b.qid, Count: res.TotalAnswers})
	return res
}

// reconfigure applies the strategy to the base's observations from the
// round just completed.
func (b *bpSim) reconfigure(strategy reconfig.Strategy, res RunResult) {
	// The effective budget never shrinks the base below its current
	// degree: reconfiguration promotes promising peers, it must not
	// disconnect whole regions of an already-joined network.
	budget := b.p.MaxPeers
	if cur := len(b.peers[b.tp.Base]); cur > budget {
		budget = cur
	}
	direct := make(map[int]bool)
	for _, w := range b.peers[b.tp.Base] {
		direct[w] = true
	}
	byNode := make(map[int]*reconfig.Observation)
	for _, e := range res.Events {
		o, ok := byNode[e.Node]
		if !ok {
			o = &reconfig.Observation{Addr: nodeAddr(e.Node), Direct: direct[e.Node], Hops: e.Hops}
			byNode[e.Node] = o
		}
		o.Answers += e.Answers
		o.Bytes += e.Answers * b.p.Spec.ObjectSize
		if e.Hops > o.Hops {
			o.Hops = e.Hops
		}
	}
	for w := range direct {
		if _, ok := byNode[w]; !ok {
			byNode[w] = &reconfig.Observation{Addr: nodeAddr(w), Direct: true, Hops: 1}
		}
	}
	cands := make([]reconfig.Observation, 0, len(byNode))
	for _, o := range byNode {
		cands = append(cands, *o)
	}
	selected := strategy.Select(cands, budget)

	// Figure-2 semantics: current peers are retained (they are proven
	// connectivity into the rest of the network); the strategy ranks
	// which newly observed peers fill the remaining budget. Peers are
	// replaced, rather than augmented, only when they die (the live
	// node's Rejoin drops offline peers).
	chosen := make(map[int]bool)
	next := append([]int(nil), b.peers[b.tp.Base]...)
	for _, w := range next {
		chosen[w] = true
	}
	var added []int
	for _, o := range selected {
		if len(next) >= budget {
			break
		}
		w := nodeFromEnvAddr(o.Addr)
		if !chosen[w] {
			next = append(next, w)
			added = append(added, w)
			chosen[w] = true
		}
	}
	sort.Ints(next)
	b.peers[b.tp.Base] = next

	// Journal the decision with the strategy's full rationale, exactly
	// like the live node's reconfigure.
	scores := make([]obs.PeerScore, 0, len(cands))
	for _, d := range reconfig.Explain(strategy, cands, budget) {
		scores = append(scores, obs.PeerScore{
			Addr:     d.Addr,
			Answers:  d.Answers,
			Bytes:    d.Bytes,
			Hops:     d.Hops,
			Rank:     d.Rank,
			Selected: d.Selected,
		})
	}
	b.journal.Append(obs.Event{
		Kind:     obs.EvReconfigured,
		Query:    b.qid,
		Strategy: strategy.Name(),
		K:        budget,
		Count:    len(added),
		Scores:   scores,
	})
	for _, w := range added {
		b.journal.Append(obs.Event{
			Kind:     obs.EvPeerAdded,
			Query:    b.qid,
			Strategy: strategy.Name(),
			Peer:     nodeAddr(w),
			Reason:   "reconfig",
		})
	}
}

// RunBestPeer executes `rounds` repetitions of the query under the given
// reconfiguration strategy (reconfig.Static == BPS; MaxCount/MinHops ==
// BPR) and returns one RunResult per round.
func RunBestPeer(tp *topology.Topology, p Params, rounds int, strategy reconfig.Strategy) []RunResult {
	return RunBestPeerObserved(tp, p, rounds, strategy, nil)
}

// RunBestPeerObserved is RunBestPeer with the base's structured events
// journalled — query lifecycle, answer batches and reconfiguration
// rationale flow through the same obs pipeline a live node feeds, so the
// convergence timeline can be reconstructed from the journal alone.
// A nil journal disables journalling.
func RunBestPeerObserved(tp *topology.Topology, p Params, rounds int, strategy reconfig.Strategy, journal *obs.Journal) []RunResult {
	if strategy == nil {
		strategy = reconfig.MaxCount{}
	}
	b := newBPSim(tp, p)
	b.journal = journal
	b.strategyName = strategy.Name()
	out := make([]RunResult, 0, rounds)
	for r := 0; r < rounds; r++ {
		res := b.runRound()
		out = append(out, res)
		if strategy.Name() != "static" {
			b.reconfigure(strategy, res)
		}
	}
	return out
}
