package storm

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"sync"
)

// File header layout (page 0, not a slotted page):
//
//	offset 0:  magic "STRM"
//	offset 4:  uint16 format version
//	offset 6:  uint32 page count (including header page)
//	offset 10: uint32 meta root (B+tree catalog root page, 0 = none)
//	offset 14: uint32 index root (B+tree inverted-index root, 0 = none)
//
// The remainder of page 0 is reserved.
const (
	fileMagic     = "STRM"
	formatVersion = 2
)

// File errors.
var (
	ErrBadMagic   = errors.New("storm: not a storm data file")
	ErrBadVersion = errors.New("storm: unsupported format version")
	ErrClosed     = errors.New("storm: file is closed")
)

// DiskFile provides page-granular I/O on a single data file. It is safe
// for concurrent use.
type DiskFile struct {
	mu     sync.Mutex
	f      *os.File
	pages  uint32 // total pages including header
	meta   PageID // catalog B+tree root, InvalidPage when absent
	index  PageID // inverted-index B+tree root, InvalidPage when absent
	closed bool

	// Stats.
	Reads  uint64
	Writes uint64
}

// CreateFile creates a new, empty data file at path, failing if it exists.
func CreateFile(path string) (*DiskFile, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return nil, fmt.Errorf("storm: create: %w", err)
	}
	df := &DiskFile{f: f, pages: 1}
	if err := df.writeHeader(); err != nil {
		_ = f.Close() // already failing; header error is what matters
		os.Remove(path)
		return nil, err
	}
	return df, nil
}

// OpenFile opens an existing data file and validates its header.
func OpenFile(path string) (*DiskFile, error) {
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("storm: open: %w", err)
	}
	var hdr [PageSize]byte
	if _, err := f.ReadAt(hdr[:], 0); err != nil {
		_ = f.Close() // already failing; the read error is what matters
		return nil, fmt.Errorf("storm: read header: %w", err)
	}
	if string(hdr[0:4]) != fileMagic {
		_ = f.Close() // already failing; bad magic is what matters
		return nil, ErrBadMagic
	}
	if v := binary.BigEndian.Uint16(hdr[4:6]); v != formatVersion {
		_ = f.Close() // already failing; bad version is what matters
		return nil, fmt.Errorf("%w: %d", ErrBadVersion, v)
	}
	pages := binary.BigEndian.Uint32(hdr[6:10])
	if pages == 0 {
		pages = 1
	}
	meta := PageID(binary.BigEndian.Uint32(hdr[10:14]))
	index := PageID(binary.BigEndian.Uint32(hdr[14:18]))
	// Cross-check against the actual file size; trust the smaller so a
	// torn header cannot direct reads past EOF.
	if st, err := f.Stat(); err == nil {
		byLen := uint32(st.Size() / PageSize)
		if byLen < pages {
			pages = byLen
		}
	}
	if uint32(meta) >= pages {
		meta = InvalidPage // torn header: ignore the stale root
	}
	if uint32(index) >= pages {
		index = InvalidPage
	}
	return &DiskFile{f: f, pages: pages, meta: meta, index: index}, nil
}

func (d *DiskFile) writeHeader() error {
	var hdr [PageSize]byte
	copy(hdr[0:4], fileMagic)
	binary.BigEndian.PutUint16(hdr[4:6], formatVersion)
	binary.BigEndian.PutUint32(hdr[6:10], d.pages)
	binary.BigEndian.PutUint32(hdr[10:14], uint32(d.meta))
	binary.BigEndian.PutUint32(hdr[14:18], uint32(d.index))
	if _, err := d.f.WriteAt(hdr[:], 0); err != nil {
		return fmt.Errorf("storm: write header: %w", err)
	}
	return nil
}

// MetaRoot returns the catalog root page id recorded in the header, or
// InvalidPage if none has been set.
func (d *DiskFile) MetaRoot() PageID {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.meta
}

// SetMetaRoot records the catalog root page id in the header.
func (d *DiskFile) SetMetaRoot(id PageID) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return ErrClosed
	}
	d.meta = id
	return d.writeHeader()
}

// IndexRoot returns the inverted-index root page id recorded in the
// header, or InvalidPage if none has been set.
func (d *DiskFile) IndexRoot() PageID {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.index
}

// SetIndexRoot records the inverted-index root page id in the header.
func (d *DiskFile) SetIndexRoot(id PageID) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return ErrClosed
	}
	d.index = id
	return d.writeHeader()
}

// PageCount returns the number of pages, including the header page.
func (d *DiskFile) PageCount() uint32 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.pages
}

// Allocate extends the file by one page and returns its id. The page is
// written initialized and sealed.
func (d *DiskFile) Allocate() (PageID, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return InvalidPage, ErrClosed
	}
	id := PageID(d.pages)
	var p Page
	p.Init(id)
	p.seal()
	if _, err := d.f.WriteAt(p.buf[:], int64(id)*PageSize); err != nil {
		return InvalidPage, fmt.Errorf("storm: allocate page %d: %w", id, err)
	}
	d.pages++
	d.Writes++
	if err := d.writeHeader(); err != nil {
		return InvalidPage, err
	}
	return id, nil
}

// ReadPage reads page id into p, verifying the checksum.
func (d *DiskFile) ReadPage(id PageID, p *Page) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return ErrClosed
	}
	if id == InvalidPage || uint32(id) >= d.pages {
		return fmt.Errorf("storm: read of page %d beyond end (%d pages)", id, d.pages)
	}
	if _, err := d.f.ReadAt(p.buf[:], int64(id)*PageSize); err != nil && err != io.EOF {
		return fmt.Errorf("storm: read page %d: %w", id, err)
	}
	d.Reads++
	return p.verify(id)
}

// WritePage seals p and writes it at its id.
func (d *DiskFile) WritePage(p *Page) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return ErrClosed
	}
	id := p.ID()
	if id == InvalidPage || uint32(id) >= d.pages {
		return fmt.Errorf("storm: write of unallocated page %d", id)
	}
	p.seal()
	if _, err := d.f.WriteAt(p.buf[:], int64(id)*PageSize); err != nil {
		return fmt.Errorf("storm: write page %d: %w", id, err)
	}
	d.Writes++
	return nil
}

// Sync flushes the file to stable storage.
func (d *DiskFile) Sync() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return ErrClosed
	}
	return d.f.Sync()
}

// Close releases the underlying file. Further operations fail with
// ErrClosed.
func (d *DiskFile) Close() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return nil
	}
	d.closed = true
	return d.f.Close()
}
