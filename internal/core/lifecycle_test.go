package core

import (
	"path/filepath"
	"sync"
	"testing"
	"time"

	"bestpeer/internal/liglo"
	"bestpeer/internal/obs"
	"bestpeer/internal/storm"
	"bestpeer/internal/transport"
)

// lifecycleFleet boots a LIGLO server plus named nodes joined to it —
// the environment every membership-lifecycle test needs.
type lifecycleFleet struct {
	nw  *transport.InProc
	srv *liglo.Server
}

func newLifecycleFleet(t *testing.T) *lifecycleFleet {
	t.Helper()
	nw := transport.NewInProc()
	srv, err := liglo.NewServer(nw, "liglo-life", liglo.ServerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return &lifecycleFleet{nw: nw, srv: srv}
}

func (f *lifecycleFleet) node(t *testing.T, name string, mutate func(cfg *Config)) *Node {
	t.Helper()
	st, err := storm.Open(filepath.Join(t.TempDir(), name+".storm"), storm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	cfg := Config{Network: f.nw, ListenAddr: name, Store: st, MaxPeers: 4}
	if mutate != nil {
		mutate(&cfg)
	}
	n, err := NewNode(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { n.Close() })
	if err := n.Join([]string{f.srv.Addr()}); err != nil {
		t.Fatal(err)
	}
	return n
}

// events drains a node's full journal for assertions.
func events(n *Node) []obs.Event {
	evs, _, _ := n.Journal().Since(0, 0)
	return evs
}

// countEvents tallies journal entries matching kind (and, when non-empty,
// peer and reason).
func countEvents(n *Node, kind obs.EventKind, peer, reason string) int {
	count := 0
	for _, e := range events(n) {
		if e.Kind != kind {
			continue
		}
		if peer != "" && e.Peer != peer {
			continue
		}
		if reason != "" && e.Reason != reason {
			continue
		}
		count++
	}
	return count
}

func hasPeer(n *Node, addr string) bool {
	for _, p := range n.Peers() {
		if p.Addr == addr {
			return true
		}
	}
	return false
}

func waitUntil(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestLeaveAnnouncesDepartAndDropsEdgesWithoutSweep pins the PR's
// headline acceptance criterion: a graceful leave removes the departing
// node's edges from its neighbors immediately via Depart announcements —
// journal-asserted, with no sweep-timeout drop anywhere — deregisters
// from LIGLO, and hands each neighbor replacement hints it adopts.
func TestLeaveAnnouncesDepartAndDropsEdgesWithoutSweep(t *testing.T) {
	f := newLifecycleFleet(t)
	a := f.node(t, "life-a", nil)
	b := f.node(t, "life-b", nil)
	c := f.node(t, "life-c", nil)
	a.SetPeers([]Peer{{Addr: b.Addr()}, {Addr: c.Addr()}})
	b.SetPeers([]Peer{{Addr: a.Addr()}})
	c.SetPeers([]Peer{{Addr: a.Addr()}})

	if err := a.Leave(); err != nil {
		t.Fatalf("Leave: %v", err)
	}
	if !a.Leaving() {
		t.Fatal("Leaving() false after Leave")
	}
	if len(a.Peers()) != 0 {
		t.Fatalf("leaver kept peers: %v", a.PeerAddrs())
	}

	// Neighbors drop the edge on the Depart announcement alone — no
	// sweep ever runs in this test, so a timeout-based drop would hang
	// this wait forever.
	waitUntil(t, "b to drop the leaver", func() bool { return !hasPeer(b, a.Addr()) })
	waitUntil(t, "c to drop the leaver", func() bool { return !hasPeer(c, a.Addr()) })

	// The leaver journalled one "leave" drop per peer plus the EvLeft
	// summary with the LIGLO outcome.
	if got := countEvents(a, obs.EvPeerDropped, "", "leave"); got != 2 {
		t.Fatalf("leaver journalled %d leave-drops, want 2", got)
	}
	if got := countEvents(a, obs.EvLeft, "", "deregistered"); got != 1 {
		t.Fatalf("leaver journalled %d EvLeft(deregistered), want 1", got)
	}
	// Each neighbor journalled the announcement and a "depart" drop —
	// and nothing was ever dropped as "unresponsive" (the sweep path).
	for _, n := range []*Node{b, c} {
		if got := countEvents(n, obs.EvDepartReceived, a.Addr(), ""); got != 1 {
			t.Fatalf("%s journalled %d EvDepartReceived, want 1", n.Addr(), got)
		}
		if got := countEvents(n, obs.EvPeerDropped, a.Addr(), "depart"); got != 1 {
			t.Fatalf("%s journalled %d depart-drops, want 1", n.Addr(), got)
		}
		if got := countEvents(n, obs.EvPeerDropped, "", "unresponsive"); got != 0 {
			t.Fatalf("%s dropped via sweep timeout: %d events", n.Addr(), got)
		}
	}

	// The Depart carried a's other peer as a replacement hint; b and c
	// heal the hole without a LIGLO round trip.
	waitUntil(t, "b to adopt the hint", func() bool { return hasPeer(b, c.Addr()) })
	waitUntil(t, "c to adopt the hint", func() bool { return hasPeer(c, b.Addr()) })
	if got := countEvents(b, obs.EvPeerAdded, c.Addr(), "depart-hint"); got != 1 {
		t.Fatalf("b journalled %d depart-hint adoptions, want 1", got)
	}

	// LIGLO marked the member offline on its own say-so.
	if got := f.srv.Stats().Deregisters; got != 1 {
		t.Fatalf("liglo deregisters = %d, want 1", got)
	}
	cli := liglo.NewClient(f.nw)
	defer cli.Close()
	if _, online, err := cli.Lookup(a.ID()); err != nil || online {
		t.Fatalf("leaver still online at LIGLO: online=%v err=%v", online, err)
	}

	// Leave is idempotent, and a fresh Join re-enters the overlay.
	if err := a.Leave(); err != nil {
		t.Fatalf("second Leave: %v", err)
	}
	if got := countEvents(a, obs.EvLeft, "", ""); got != 1 {
		t.Fatalf("second Leave re-journalled EvLeft: %d events", got)
	}
	if err := a.Join([]string{f.srv.Addr()}); err != nil {
		t.Fatalf("rejoin after leave: %v", err)
	}
	if a.Leaving() {
		t.Fatal("still Leaving() after Join")
	}
}

// TestRepairRoundDropsSuspectAndBackfills drives the crash half of the
// lifecycle: a peer dies, the transport failure detector marks it
// suspect, and one repair round validates the suspicion, drops the edge
// and backfills the degree from LIGLO.
func TestRepairRoundDropsSuspectAndBackfills(t *testing.T) {
	f := newLifecycleFleet(t)
	sensitive := func(cfg *Config) {
		cfg.MaxPeers = 3
		cfg.Transport = transport.Options{
			FailThreshold: 1,
			// Long backoff: the suspect window must outlive the probe
			// timeouts below so RepairRound still sees the suspicion.
			BackoffBase: time.Minute,
			DialTimeout: 200 * time.Millisecond,
		}
	}
	a := f.node(t, "rep-a", sensitive)
	b := f.node(t, "rep-b", nil)
	f.node(t, "rep-c", nil)
	f.node(t, "rep-d", nil)
	a.SetPeers([]Peer{{Addr: b.Addr()}})

	// b crashes: its listener disappears without any Depart.
	bAddr := b.Addr()
	_ = b.Close() // the crash under test
	f.nw.Drop(bAddr)

	// A failed probe pushes b over the (threshold 1) failure bar.
	if a.Probe(bAddr, 100*time.Millisecond) {
		t.Fatal("probe of crashed peer succeeded")
	}
	waitUntil(t, "transport to suspect the crashed peer", func() bool {
		return a.msgr.Suspect(bAddr)
	})
	// The home LIGLO runs a liveness sweep and notices the crash too —
	// without this, backfill would legitimately hand the stale member
	// back (the registry's failure-detector lag).
	f.srv.CheckNow()

	added := a.RepairRound("test-crash", 200*time.Millisecond)
	if hasPeer(a, bAddr) {
		t.Fatalf("crashed peer still in set: %v", a.PeerAddrs())
	}
	if got := countEvents(a, obs.EvPeerDropped, bAddr, "suspect"); got != 1 {
		t.Fatalf("journalled %d suspect-drops, want 1", got)
	}
	// Backfill found the two live strangers via the home LIGLO.
	if added < 1 {
		t.Fatalf("repair added %d peers, want ≥ 1", added)
	}
	if got := countEvents(a, obs.EvRepair, "", "test-crash"); got != 1 {
		t.Fatalf("journalled %d EvRepair(test-crash), want 1", got)
	}
	if len(a.Peers()) == 0 {
		t.Fatal("repair left the node isolated")
	}

	// A leaving node must not repair itself back into the overlay.
	if err := a.Leave(); err != nil {
		t.Fatalf("Leave: %v", err)
	}
	if got := a.RepairRound("after-leave", 100*time.Millisecond); got != 0 {
		t.Fatalf("repair ran on a leaving node: added %d", got)
	}
	if len(a.Peers()) != 0 {
		t.Fatalf("leaving node re-adopted peers: %v", a.PeerAddrs())
	}
}

// TestPeersOfPeer pins the neighbor-of-neighbor exchange repair builds
// on: a peer serves its peer list minus the requester, and an
// unreachable target times out cleanly.
func TestPeersOfPeer(t *testing.T) {
	f := newLifecycleFleet(t)
	a := f.node(t, "pop-a", nil)
	b := f.node(t, "pop-b", nil)
	c := f.node(t, "pop-c", nil)
	a.SetPeers([]Peer{{Addr: b.Addr()}})
	b.SetPeers([]Peer{{Addr: a.Addr()}, {Addr: c.Addr()}})

	got, ok := a.PeersOfPeer(b.Addr(), time.Second)
	if !ok {
		t.Fatal("PeersOfPeer timed out against a live peer")
	}
	if len(got) != 1 || got[0].Addr != c.Addr() {
		t.Fatalf("candidates = %v, want just %s (requester excluded)", got, c.Addr())
	}
	if _, ok := a.PeersOfPeer("pop-nobody", 100*time.Millisecond); ok {
		t.Fatal("PeersOfPeer against a dead address reported success")
	}
}

// TestSweepRacesLeaveAndDepart is the churn race the PR hardens against:
// sweeps probing the peer set while one neighbor gracefully leaves and
// another crashes, concurrently with repair rounds. The invariants — no
// resurrected edges, at most one journalled drop per departed peer — must
// hold under any interleaving (run with -race in CI).
func TestSweepRacesLeaveAndDepart(t *testing.T) {
	f := newLifecycleFleet(t)
	a := f.node(t, "race-a", func(cfg *Config) {
		cfg.Transport = transport.Options{
			FailThreshold: 1,
			BackoffBase:   20 * time.Millisecond,
			DialTimeout:   100 * time.Millisecond,
		}
	})
	b := f.node(t, "race-b", nil)
	c := f.node(t, "race-c", nil)
	d := f.node(t, "race-d", nil)
	// Pin every peer set: LIGLO seeds joiners with initial peers, and a
	// stale third-party edge to the leaver would let neighbor-of-neighbor
	// backfill legitimately hand it back.
	a.SetPeers([]Peer{{Addr: b.Addr()}, {Addr: c.Addr()}, {Addr: d.Addr()}})
	b.SetPeers([]Peer{{Addr: a.Addr()}, {Addr: d.Addr()}})
	c.SetPeers(nil)
	d.SetPeers([]Peer{{Addr: a.Addr()}})

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { // continuous sweeps, the failure-detector path
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				a.SweepPeers(50 * time.Millisecond)
			}
		}
	}()
	go func() { // continuous repair, the backfill path
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				a.RepairRound("race", 50*time.Millisecond)
				time.Sleep(10 * time.Millisecond)
			}
		}
	}()

	time.Sleep(30 * time.Millisecond)
	if err := b.Leave(); err != nil { // graceful exit mid-sweep
		t.Fatalf("Leave: %v", err)
	}
	cAddr := c.Addr()
	_ = c.Close() // crash mid-sweep
	f.nw.Drop(cAddr)

	waitUntil(t, "the leaver to drop", func() bool { return !hasPeer(a, b.Addr()) })
	waitUntil(t, "the crash to be detected", func() bool {
		return countEvents(a, obs.EvPeerDropped, cAddr, "") >= 1
	})
	close(stop)
	wg.Wait()

	// The leaver dropped exactly once — via its Depart, since it stays
	// responsive to probes after Leave. A second drop would mean a stale
	// sweep or repair result clobbered the newer peer set.
	if got := countEvents(a, obs.EvPeerDropped, b.Addr(), ""); got != 1 {
		t.Fatalf("leaver dropped %d times, want exactly 1", got)
	}
	// The crashed node may flap: LIGLO has not yet noticed the crash, so
	// repair can legitimately hand it back until the server's own sweep
	// catches up. But every extra drop must be preceded by a re-add —
	// consecutive drops of an absent peer would be double journalling.
	cDrops := countEvents(a, obs.EvPeerDropped, cAddr, "")
	cAdds := countEvents(a, obs.EvPeerAdded, cAddr, "")
	if cDrops > cAdds+1 {
		t.Fatalf("crashed peer: %d drops vs %d adds — dropped while absent", cDrops, cAdds)
	}
	// No resurrection of the leaver: it deregistered from LIGLO, no hint
	// names it and every third-party edge to it is gone, so further
	// repair rounds must not bring it back.
	a.RepairRound("final", 100*time.Millisecond)
	a.RepairRound("final", 100*time.Millisecond)
	if hasPeer(a, b.Addr()) {
		t.Fatalf("leaver resurrected: %v", a.PeerAddrs())
	}
	// The survivor is still connected — repair backfilled around the
	// churn rather than tearing the overlay down.
	if len(a.Peers()) == 0 {
		t.Fatal("node left isolated after churn")
	}
}

// TestRepairDoesNotResurrectDepartedPeer pins the live-drill regression:
// a leaver's process stays up (it can Rejoin), so it answers probes —
// and a neighbor that has not yet processed the Depart keeps offering it
// as a neighbor-of-neighbor candidate. The depart-kicked repair round
// must refuse that gossip instead of re-adopting the edge it just tore
// down; only the home LIGLO vouching for the address again (after a
// rejoin) brings it back.
func TestRepairDoesNotResurrectDepartedPeer(t *testing.T) {
	f := newLifecycleFleet(t)
	a := f.node(t, "dl-a", nil)
	b := f.node(t, "dl-b", nil)
	c := f.node(t, "dl-c", nil)
	// Pin the topology (LIGLO's default initial-peer seeding would add
	// extra edges): a → {b, c}; b → {a}; c → {b}. c never hears b's
	// Depart, so its peer list is exactly the stale gossip under test.
	a.SetPeers([]Peer{{Addr: b.Addr()}, {Addr: c.Addr()}})
	b.SetPeers([]Peer{{Addr: a.Addr()}})
	c.SetPeers([]Peer{{Addr: b.Addr()}})

	if err := b.Leave(); err != nil {
		t.Fatalf("Leave: %v", err)
	}
	waitUntil(t, "a to process b's depart", func() bool { return !hasPeer(a, b.Addr()) })

	// The repair round has a deficit and c offers b (alive, probe-
	// positive, deregistered). It must not come back.
	a.RepairRound("test-departed", 200*time.Millisecond)
	if hasPeer(a, b.Addr()) {
		t.Fatalf("repair resurrected departed peer: %v", a.PeerAddrs())
	}
	if got := countEvents(a, obs.EvPeerAdded, b.Addr(), "repair"); got != 0 {
		t.Fatalf("journal shows %d repair adoptions of the leaver", got)
	}

	// Rejoin flips the registry back to truthful-online; the next repair
	// round's Replenish re-adopts b through the trusted path and clears
	// the refusal early (no departedTTL wait).
	if err := b.Join([]string{f.srv.Addr()}); err != nil {
		t.Fatalf("rejoin: %v", err)
	}
	a.RepairRound("test-rejoined", 200*time.Millisecond)
	if !hasPeer(a, b.Addr()) {
		t.Fatalf("replenish did not re-adopt rejoined peer: %v", a.PeerAddrs())
	}
	if a.recentlyDeparted(b.Addr()) {
		t.Fatal("adoption did not clear the departed refusal")
	}
}
