package main

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"bestpeer/internal/core"
	"bestpeer/internal/qroute"
	"bestpeer/internal/storm"
	"bestpeer/internal/transport"
)

// shellFixture builds a two-node in-process network and returns the base
// node plus its store, with stdout capture around dispatch calls. The
// base runs with the answer cache enabled, like `bestpeer -cache`.
func shellFixture(t *testing.T) (*core.Node, *storm.Store) {
	t.Helper()
	nw := transport.NewInProc()
	mk := func(name string) (*core.Node, *storm.Store) {
		st, err := storm.Open(filepath.Join(t.TempDir(), name+".storm"), storm.Options{})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { st.Close() })
		n, err := core.NewNode(core.Config{Network: nw, ListenAddr: name, Store: st,
			QRoute: qroute.Options{Enable: name == "shell-base"}})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { n.Close() })
		return n, st
	}
	base, baseStore := mk("shell-base")
	peer, peerStore := mk("shell-peer")
	peerStore.Put(&storm.Object{Name: "remote.mp3", Keywords: []string{"jazz"},
		Data: []byte("remote-bytes")})
	base.SetPeers([]core.Peer{{Addr: peer.Addr()}})
	return base, baseStore
}

// capture runs fn with os.Stdout redirected to a buffer.
func capture(t *testing.T, fn func()) string {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	done := make(chan string)
	go func() {
		var buf bytes.Buffer
		buf.ReadFrom(r)
		done <- buf.String()
	}()
	fn()
	w.Close()
	os.Stdout = old
	return <-done
}

func TestShellPutGetLs(t *testing.T) {
	node, store := shellFixture(t)
	out := capture(t, func() {
		dispatch(node, store, "put local.txt notes some local text")
		dispatch(node, store, "get local.txt")
		dispatch(node, store, "ls")
	})
	for _, want := range []string{"local.txt", "some local text", "[notes]"} {
		if !strings.Contains(out, want) {
			t.Fatalf("shell output missing %q:\n%s", want, out)
		}
	}
}

func TestShellQueryFindsRemote(t *testing.T) {
	node, store := shellFixture(t)
	out := capture(t, func() {
		dispatch(node, store, "query jazz")
	})
	if !strings.Contains(out, "remote.mp3") {
		t.Fatalf("query output missing remote hit:\n%s", out)
	}
	if !strings.Contains(out, "answers in") {
		t.Fatalf("query output missing summary:\n%s", out)
	}
}

func TestShellFilterAndHints(t *testing.T) {
	node, store := shellFixture(t)
	out := capture(t, func() {
		dispatch(node, store, "filter keyword=jazz & size>5")
	})
	if !strings.Contains(out, "remote.mp3") {
		t.Fatalf("filter output missing hit:\n%s", out)
	}
	out = capture(t, func() {
		dispatch(node, store, "hints jazz")
	})
	if !strings.Contains(out, "remote.mp3") || !strings.Contains(out, "fetching") {
		t.Fatalf("hints output wrong:\n%s", out)
	}
	if !strings.Contains(out, fmt.Sprintf("(%dB)", len("remote-bytes"))) {
		t.Fatalf("hints did not fetch data:\n%s", out)
	}
}

func TestShellCache(t *testing.T) {
	node, store := shellFixture(t)
	out := capture(t, func() {
		dispatch(node, store, "query jazz")
		dispatch(node, store, "query jazz") // identical repeat: answer-cache hit
		dispatch(node, store, "cache")
	})
	if !strings.Contains(out, "cache: entries=") {
		t.Fatalf("cache output missing cache line:\n%s", out)
	}
	if !strings.Contains(out, "hits=1") {
		t.Fatalf("repeat query must register one cache hit:\n%s", out)
	}
	if !strings.Contains(out, "routing: terms=") {
		t.Fatalf("cache output missing routing line:\n%s", out)
	}
}

func TestShellPeersAndStats(t *testing.T) {
	node, store := shellFixture(t)
	out := capture(t, func() {
		dispatch(node, store, "peers")
		dispatch(node, store, "stats")
	})
	if !strings.Contains(out, "shell-peer") {
		t.Fatalf("peers output missing peer:\n%s", out)
	}
	if !strings.Contains(out, "pool: policy=lru") {
		t.Fatalf("stats output missing pool line:\n%s", out)
	}
}

func TestShellErrorsAndExit(t *testing.T) {
	node, store := shellFixture(t)
	out := capture(t, func() {
		dispatch(node, store, "put onlyname")
		dispatch(node, store, "get nope")
		dispatch(node, store, "bogus-cmd")
		dispatch(node, store, "help")
	})
	if !strings.Contains(out, "usage: put") {
		t.Fatalf("missing put usage:\n%s", out)
	}
	if !strings.Contains(out, "error:") {
		t.Fatalf("missing get error:\n%s", out)
	}
	if !strings.Contains(out, "unknown command") {
		t.Fatalf("missing unknown-command message:\n%s", out)
	}
	if !dispatch(node, store, "peers") {
		t.Fatal("non-quit command terminated the shell")
	}
	if dispatch(node, store, "quit") {
		t.Fatal("quit did not terminate the shell")
	}
	_ = time.Second
}
