// Command bpvet runs the project's invariant analyzers over the given
// packages and exits non-zero when any finding survives suppression.
//
// Usage:
//
//	bpvet [-list] [-json] [-ignores] [-baseline file] [-write-baseline file] [packages]
//
// Packages follow the subset of go-tool patterns the repo uses: a
// directory path or a recursive ./... pattern (the default). Findings
// print as "file:line: [analyzer] message"; suppress an intentional
// violation with a `//bpvet:ignore <analyzer> rationale` comment on the
// offending line or the line above it — both the analyzer name and the
// rationale are mandatory, and malformed directives are themselves
// findings.
//
// A committed baseline (-baseline bpvet.baseline.json) lets a new
// analyzer land with a burn-down instead of a big-bang fix: findings
// recorded in the baseline are tolerated, anything new fails the run.
// Malformed-ignore findings are never baselined. Regenerate with
// -write-baseline after deliberately accepting current findings.
//
// Exit codes: 0 clean, 1 findings (including malformed ignores),
// 2 usage, loader or type-check failure.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"bestpeer/internal/vet"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// jsonFinding is the -json/-baseline wire form of one diagnostic.
type jsonFinding struct {
	File     string `json:"file"`
	Line     int    `json:"line,omitempty"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
	// Count is used in baselines only: how many identical findings
	// (same file, analyzer, message — line excluded, so pure line
	// drift does not invalidate the baseline) are tolerated.
	Count int `json:"count,omitempty"`
}

// baselineFile is the committed burn-down ledger.
type baselineFile struct {
	Version  int           `json:"version"`
	Findings []jsonFinding `json:"findings"`
}

// run is the testable body of main: 0 clean, 1 findings, 2 usage or
// load failure.
func run(args []string, out, errOut io.Writer) int {
	fs := flag.NewFlagSet("bpvet", flag.ContinueOnError)
	fs.SetOutput(errOut)
	list := fs.Bool("list", false, "list the analyzers and their rules, then exit")
	dir := fs.String("dir", ".", "directory to resolve package patterns against")
	jsonOut := fs.Bool("json", false, "emit findings as a JSON array instead of text")
	ignores := fs.Bool("ignores", false, "print the //bpvet:ignore suppression inventory, then exit")
	baselinePath := fs.String("baseline", "", "tolerate findings recorded in this baseline file")
	writeBaseline := fs.String("write-baseline", "", "write current findings to this baseline file and exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, a := range vet.All() {
			fmt.Fprintf(out, "%-14s %s\n", a.Name(), a.Doc())
		}
		return 0
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := vet.Load(*dir, patterns)
	if err != nil {
		fmt.Fprintln(errOut, "bpvet:", err)
		return 2
	}

	if *ignores {
		return printIgnores(pkgs, *dir, out, errOut)
	}

	diags := vet.Run(pkgs, vet.All())

	findings := make([]jsonFinding, len(diags))
	for i, d := range diags {
		findings[i] = jsonFinding{
			File:     relPath(*dir, d.Pos.Filename),
			Line:     d.Pos.Line,
			Analyzer: d.Analyzer,
			Message:  d.Message,
		}
	}

	if *writeBaseline != "" {
		return emitBaseline(findings, *writeBaseline, errOut)
	}
	if *baselinePath != "" {
		findings, err = applyBaseline(findings, *baselinePath)
		if err != nil {
			fmt.Fprintln(errOut, "bpvet:", err)
			return 2
		}
	}

	if *jsonOut {
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		if findings == nil {
			findings = []jsonFinding{}
		}
		if err := enc.Encode(findings); err != nil {
			fmt.Fprintln(errOut, "bpvet:", err)
			return 2
		}
	} else {
		for _, f := range findings {
			fmt.Fprintf(out, "%s:%d: [%s] %s\n", f.File, f.Line, f.Analyzer, f.Message)
		}
	}
	if len(findings) > 0 {
		fmt.Fprintf(errOut, "bpvet: %d finding(s)\n", len(findings))
		return 1
	}
	return 0
}

// baselineKey identifies a finding class for baseline matching. Line
// numbers are deliberately excluded so unrelated edits above a tolerated
// finding do not invalidate the ledger.
func baselineKey(f jsonFinding) string {
	return f.File + "\x00" + f.Analyzer + "\x00" + f.Message
}

// applyBaseline drops findings covered by the committed baseline, up to
// each entry's count. Malformed-ignore findings are never dropped.
func applyBaseline(findings []jsonFinding, path string) ([]jsonFinding, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("baseline: %w", err)
	}
	var bl baselineFile
	if err := json.Unmarshal(data, &bl); err != nil {
		return nil, fmt.Errorf("baseline %s: %w", path, err)
	}
	allowed := make(map[string]int)
	for _, f := range bl.Findings {
		n := f.Count
		if n <= 0 {
			n = 1
		}
		allowed[baselineKey(f)] += n
	}
	var kept []jsonFinding
	for _, f := range findings {
		if f.Analyzer != "ignore" {
			if k := baselineKey(f); allowed[k] > 0 {
				allowed[k]--
				continue
			}
		}
		kept = append(kept, f)
	}
	return kept, nil
}

// emitBaseline aggregates current findings into a baseline ledger.
// Malformed-ignore findings cannot be baselined and fail the write.
func emitBaseline(findings []jsonFinding, path string, errOut io.Writer) int {
	counts := make(map[string]*jsonFinding)
	var order []string
	for _, f := range findings {
		if f.Analyzer == "ignore" {
			fmt.Fprintf(errOut, "bpvet: cannot baseline malformed ignore at %s:%d — fix the directive\n", f.File, f.Line)
			return 1
		}
		k := baselineKey(f)
		if e, ok := counts[k]; ok {
			e.Count++
			continue
		}
		entry := f
		entry.Line = 0
		entry.Count = 1
		counts[k] = &entry
		order = append(order, k)
	}
	sort.Strings(order)
	bl := baselineFile{Version: 1, Findings: make([]jsonFinding, 0, len(order))}
	for _, k := range order {
		bl.Findings = append(bl.Findings, *counts[k])
	}
	data, err := json.MarshalIndent(&bl, "", "  ")
	if err != nil {
		fmt.Fprintln(errOut, "bpvet:", err)
		return 2
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		fmt.Fprintln(errOut, "bpvet:", err)
		return 2
	}
	fmt.Fprintf(errOut, "bpvet: wrote %d baseline entries to %s\n", len(bl.Findings), path)
	return 0
}

// printIgnores renders the suppression inventory. Malformed directives
// are listed as errors and make the run exit 1, so the inventory doubles
// as an audit.
func printIgnores(pkgs []*vet.Package, dir string, out, errOut io.Writer) int {
	directives, bad := vet.CollectIgnores(pkgs)
	for _, d := range directives {
		fmt.Fprintf(out, "%s:%d: %s — %s\n",
			relPath(dir, d.Pos.Filename), d.Pos.Line, strings.Join(d.Analyzers, ", "), d.Reason)
	}
	for _, d := range bad {
		fmt.Fprintf(out, "%s:%d: MALFORMED — %s\n", relPath(dir, d.Pos.Filename), d.Pos.Line, d.Message)
	}
	fmt.Fprintf(errOut, "bpvet: %d suppression(s), %d malformed\n", len(directives), len(bad))
	if len(bad) > 0 {
		return 1
	}
	return 0
}

// relPath shortens filenames to be relative to the working directory
// when possible, keeping output stable across checkouts.
func relPath(dir, filename string) string {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return filename
	}
	rel, err := filepath.Rel(abs, filename)
	if err != nil || rel == "" {
		return filename
	}
	return rel
}
