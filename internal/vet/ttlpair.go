package vet

import (
	"go/ast"
	"go/token"
	"go/types"
)

// ttlpair enforces the paper's redundant-counter rule (§3.1): TTL and
// Hops are maintained together — TTL decremented, Hops incremented — at
// every forwarding step, and jointly let a host drop agents it has
// already seen or that have expired. Forwarding code that decrements a
// TTL field on a struct that also carries a Hops field, without touching
// or checking Hops in the same function, breaks the pairing.
type ttlpair struct{}

func (ttlpair) Name() string { return "ttlpair" }
func (ttlpair) Doc() string {
	return "TTL decremented without the paired Hops update/check (paper §3.1 redundant counters)"
}

func (ttlpair) Run(p *Pass) {
	for _, file := range p.Files {
		funcBodies(file, func(name string, body *ast.BlockStmt) {
			runTTLPair(p, body)
		})
	}
}

func runTTLPair(p *Pass, body *ast.BlockStmt) {
	var decrements []token.Pos
	touchesHops := false
	inspectSameFunc(body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.IncDecStmt:
			if s.Tok == token.DEC && isPairedTTLField(p, s.X) {
				decrements = append(decrements, s.Pos())
			}
		case *ast.AssignStmt:
			if (s.Tok == token.SUB_ASSIGN || s.Tok == token.ASSIGN) && len(s.Lhs) == len(s.Rhs) {
				for i, lhs := range s.Lhs {
					if !isPairedTTLField(p, lhs) {
						continue
					}
					if s.Tok == token.SUB_ASSIGN || containsSub(s.Rhs[i]) {
						decrements = append(decrements, s.Pos())
					}
				}
			}
		case *ast.SelectorExpr:
			if s.Sel.Name == "Hops" {
				touchesHops = true
			}
		}
		return true
	})
	if touchesHops {
		return
	}
	for _, pos := range decrements {
		p.Reportf(pos, "TTL decremented but Hops never updated or checked in this function; the counters are redundant by design")
	}
}

// isPairedTTLField reports whether e selects a field named TTL on a
// struct that also declares a Hops field — the envelope shape the rule
// is about.
func isPairedTTLField(p *Pass, e ast.Expr) bool {
	sel, ok := e.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "TTL" {
		return false
	}
	t := p.TypeOf(sel.X)
	if t == nil {
		return false
	}
	st, ok := deref(t).Underlying().(*types.Struct)
	if !ok {
		return false
	}
	hasTTL, hasHops := false, false
	for i := 0; i < st.NumFields(); i++ {
		switch st.Field(i).Name() {
		case "TTL":
			hasTTL = true
		case "Hops":
			hasHops = true
		}
	}
	return hasTTL && hasHops
}

// containsSub reports whether the expression contains a subtraction.
func containsSub(e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if b, ok := n.(*ast.BinaryExpr); ok && b.Op == token.SUB {
			found = true
		}
		return !found
	})
	return found
}
