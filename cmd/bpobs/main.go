// Command bpobs runs the BestPeer fleet observatory: it scrapes the
// admin endpoints of a set of member nodes (their /metrics.json,
// /healthz, /peers and /events journals), merges the event streams into
// a fleet-wide snapshot, and serves the result:
//
//	/fleet              the full snapshot (per-node views + merged events)
//	/fleet/topology     the overlay graph, node -> direct peers
//	/fleet/convergence  the reconfiguration-convergence timeline
//	/fleet/trace/<id>   cross-node trace assembly for one query
//
// Event cursors persist across scrapes, so each poll transfers only new
// events; journal overflow on a member shows up as a per-member missed
// count, never as silently absent history.
//
// Usage:
//
//	bpobs -members 127.0.0.1:9090,127.0.0.1:9091 [-serve :8099]
//	      [-interval 5s] [-once]
package main

import (
	"encoding/json"
	"flag"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"bestpeer/internal/observatory"
)

func main() {
	members := flag.String("members", "", "comma-separated member admin addresses to scrape")
	serve := flag.String("serve", "", "serve the observatory on this address; ':port' binds loopback only; empty picks a loopback port")
	interval := flag.Duration("interval", 0, "background scrape interval (0 = scrape only on request)")
	once := flag.Bool("once", false, "scrape once, print the fleet snapshot as JSON, and exit")
	flag.Parse()

	if *members == "" {
		log.Fatal("bpobs: -members is required (comma-separated admin addresses)")
	}
	var addrs []string
	for _, m := range strings.Split(*members, ",") {
		if m = strings.TrimSpace(m); m != "" {
			addrs = append(addrs, m)
		}
	}
	col := observatory.NewCollector(addrs...)

	if *once {
		snap := col.Scrape()
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(snap); err != nil {
			log.Fatalf("bpobs: encode snapshot: %v", err)
		}
		return
	}

	srv, err := observatory.StartServer(*serve, col)
	if err != nil {
		log.Fatalf("bpobs: %v", err)
	}
	log.Printf("bpobs: observing %d members on http://%s/fleet", len(addrs), srv.Addr())

	stop := make(chan struct{})
	if *interval > 0 {
		go scrapeLoop(col, *interval, stop)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	close(stop)
	snap := col.Snapshot()
	log.Printf("bpobs: shutting down with %d events collected, %d missed", len(snap.Events), snap.Missed)
	if err := srv.Close(); err != nil {
		log.Fatalf("bpobs: close: %v", err)
	}
}

// scrapeLoop polls the fleet so the journal cursors keep pace with the
// members' ring buffers even when nobody is hitting the HTTP endpoints.
func scrapeLoop(col *observatory.Collector, every time.Duration, stop <-chan struct{}) {
	defer func() { recover() }() // a crashed poller must not take the observatory down
	tick := time.NewTicker(every)
	defer tick.Stop()
	for {
		select {
		case <-tick.C:
			col.Scrape()
		case <-stop:
			return
		}
	}
}
