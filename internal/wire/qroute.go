package wire

// QRoute is the query-routing extension carried by agent and result
// envelopes when the qroute subsystem is enabled. Like TraceContext it
// travels as a versioned codec extension (see codec.go): envelopes
// without it encode byte-identically to the legacy layout, old decoders
// skip it, and old encoders' frames parse under new decoders.
type QRoute struct {
	// Via is the base node's first-hop neighbor this agent was routed
	// through. Peers copy it verbatim onto their out-of-network result
	// envelopes so the base can attribute each answer batch to the
	// neighbor that produced it and update its learned routing index.
	Via string `json:"via,omitempty"`
	// Cached marks a result batch served from the peer's answer cache
	// instead of a fresh store scan — the provenance flag surfaced to
	// requesters.
	Cached bool `json:"cached,omitempty"`
	// Epoch is the serving node's store-mutation epoch at serve time.
	Epoch uint64 `json:"epoch,omitempty"`
}

// encodeQRoute serializes the extension for the codec's qroute field.
func encodeQRoute(q *QRoute) []byte {
	var e Encoder
	e.String(q.Via)
	e.Bool(q.Cached)
	e.Uvarint(q.Epoch)
	return e.Bytes()
}

func decodeQRoute(payload []byte) (*QRoute, error) {
	d := NewDecoder(payload)
	q := &QRoute{Via: d.String()}
	q.Cached = d.Bool()
	q.Epoch = d.Uvarint()
	if err := d.Finish(); err != nil {
		return nil, err
	}
	return q, nil
}
