package liglo

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"bestpeer/internal/transport"
	"bestpeer/internal/wire"
)

// ringServers starts n LIGLO servers joined into one chord ring, with
// maintenance loops parked (hour-long cadences) so tests drive
// convergence deterministically via convergeRing and ReplicateNow.
func ringServers(t *testing.T, n int) (transport.Network, []*Server) {
	t.Helper()
	nw := transport.NewInProc()
	servers := make([]*Server, 0, n)
	for i := 0; i < n; i++ {
		join := ""
		if i > 0 {
			join = servers[0].Addr()
		}
		srv, err := NewServer(nw, fmt.Sprintf("liglo-%d", i+1), ServerConfig{
			Ring: &RingConfig{
				Join:            join,
				Successors:      4,
				StabilizeEvery:  time.Hour,
				FixFingersEvery: time.Hour,
				CheckPredEvery:  time.Hour,
				ReplicateEvery:  -1,
			},
		})
		if err != nil {
			t.Fatalf("server %d: %v", i, err)
		}
		servers = append(servers, srv)
	}
	t.Cleanup(func() {
		for _, s := range servers {
			_ = s.Close()
		}
	})
	return nw, servers
}

// convergeRing drives enough maintenance rounds across the given servers
// for successor lists, predecessors and fingers to settle.
func convergeRing(servers ...*Server) {
	for round := 0; round < 3*len(servers)+6; round++ {
		for _, s := range servers {
			s.Ring().CheckPredecessor()
			s.Ring().Stabilize()
			s.Ring().RefreshFingers()
		}
	}
}

// rawExchange sends one envelope straight at a specific server and
// returns its reply — bypassing the client's redirect following, so
// tests can observe the redirect envelope itself.
func rawExchange(t *testing.T, nw transport.Network, server string, req *wire.Envelope) *wire.Envelope {
	t.Helper()
	conn, err := transport.DialTimeout(nw, server, time.Second)
	if err != nil {
		t.Fatalf("dial %s: %v", server, err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(5 * time.Second))
	wc := wire.NewConn(conn)
	if err := wc.Send(req); err != nil {
		t.Fatalf("send to %s: %v", server, err)
	}
	resp, err := wc.Recv()
	if err != nil {
		t.Fatalf("recv from %s: %v", server, err)
	}
	return resp
}

func ringAddrs(servers []*Server) []string {
	addrs := make([]string, len(servers))
	for i, s := range servers {
		addrs[i] = s.Addr()
	}
	return addrs
}

// TestRingPartitionsResolution: three ring servers each own their own
// members' keys; a server asked about a key it does not own answers
// with a redirect to the owner, and replication spreads every record to
// the other members.
func TestRingPartitionsResolution(t *testing.T) {
	nw, servers := ringServers(t, 3)
	convergeRing(servers...)

	// Every server should see both others in its successor list.
	for _, s := range servers {
		succs := s.Ring().Snapshot().Successors
		found := map[string]bool{}
		for _, r := range succs {
			found[r.Addr] = true
		}
		for _, other := range servers {
			if other != s && !found[other.Addr()] {
				t.Fatalf("%s successors %v missing %s", s.Addr(), succs, other.Addr())
			}
		}
	}

	c := NewClient(nw)
	defer c.Close()
	ids := make([]wire.BPID, len(servers))
	for i, s := range servers {
		id, _, err := c.Register(s.Addr(), fmt.Sprintf("n%d:100", i+1))
		if err != nil {
			t.Fatalf("register at %s: %v", s.Addr(), err)
		}
		ids[i] = id
	}

	// A server that does not own a key must redirect to the one that does.
	req := reply(wire.KindLigloLookup, encodeLookupReq(&lookupReq{ID: ids[0]}))
	resp := rawExchange(t, nw, servers[1].Addr(), req)
	if resp.Kind != wire.KindRingRedirect {
		t.Fatalf("lookup of %v at %s: kind = %v, want redirect", ids[0], servers[1].Addr(), resp.Kind)
	}
	m, err := decodeRedirectMsg(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if m.Addr != servers[0].Addr() {
		t.Fatalf("redirect to %s, want %s", m.Addr, servers[0].Addr())
	}
	if servers[1].Stats().Redirects == 0 {
		t.Fatal("redirect counter not incremented")
	}

	// Replication lands every server's record on both of the others.
	for _, s := range servers {
		if acked := s.ReplicateNow(); acked != 2 {
			t.Fatalf("%s replicated to %d successors, want 2", s.Addr(), acked)
		}
	}
	for _, s := range servers {
		if got := s.ForeignRecords(); got != 2 {
			t.Fatalf("%s holds %d foreign records, want 2", s.Addr(), got)
		}
	}

	// A ring-aware client resolves every BPID regardless of issuer.
	rc := NewClientOpts(nw, ClientOptions{RingServers: ringAddrs(servers)})
	defer rc.Close()
	for i, id := range ids {
		addr, online, err := rc.Lookup(id)
		if err != nil {
			t.Fatalf("lookup %v: %v", id, err)
		}
		if want := fmt.Sprintf("n%d:100", i+1); addr != want || !online {
			t.Fatalf("lookup %v = (%s, %v), want (%s, true)", id, addr, online, want)
		}
	}
}

// TestRingSurvivesLeaveAndCrash is the acceptance scenario: a 3-server
// ring takes one graceful leave and one crash, and every BPID stays
// resolvable from the survivor via successor-list replication.
func TestRingSurvivesLeaveAndCrash(t *testing.T) {
	nw, servers := ringServers(t, 3)
	convergeRing(servers...)

	c := NewClient(nw)
	defer c.Close()
	ids := make([]wire.BPID, len(servers))
	for i, s := range servers {
		id, _, err := c.Register(s.Addr(), fmt.Sprintf("n%d:100", i+1))
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = id
	}
	for _, s := range servers {
		s.ReplicateNow()
	}

	// Graceful leave: liglo-1 hands off and shuts down.
	if err := servers[0].Leave(); err != nil {
		t.Fatalf("leave: %v", err)
	}
	convergeRing(servers[1], servers[2])

	rc := NewClientOpts(nw, ClientOptions{RingServers: ringAddrs(servers[1:])})
	defer rc.Close()
	for i, id := range ids {
		addr, _, err := rc.Lookup(id)
		if err != nil {
			t.Fatalf("after leave, lookup %v: %v", id, err)
		}
		if want := fmt.Sprintf("n%d:100", i+1); addr != want {
			t.Fatalf("after leave, lookup %v = %s, want %s", id, addr, want)
		}
	}

	// Crash: liglo-3 disappears without a goodbye. Failure detection
	// needs a few probe rounds to condemn it, then liglo-2 owns the
	// whole circle and serves everything it replicated.
	_ = servers[2].Close()
	convergeRing(servers[1])
	convergeRing(servers[1])

	snap := servers[1].Ring().Snapshot()
	if len(snap.Successors) != 1 || snap.Successors[0].Addr != servers[1].Addr() {
		t.Fatalf("survivor successors = %v, want just itself", snap.Successors)
	}
	for i, id := range ids {
		addr, _, err := rc.Lookup(id)
		if err != nil {
			t.Fatalf("after crash, lookup %v: %v", id, err)
		}
		if want := fmt.Sprintf("n%d:100", i+1); addr != want {
			t.Fatalf("after crash, lookup %v = %s, want %s", id, addr, want)
		}
	}
}

// TestClientRejoinAfterOwnerLeaves: a client registered against a ring
// member that gracefully leaves must re-resolve to the new key owner
// and Rejoin there without losing its BPID.
func TestClientRejoinAfterOwnerLeaves(t *testing.T) {
	nw, servers := ringServers(t, 3)
	convergeRing(servers...)

	rc := NewClientOpts(nw, ClientOptions{RingServers: ringAddrs(servers)})
	defer rc.Close()
	id, _, err := rc.Register(servers[0].Addr(), "n1:100")
	if err != nil {
		t.Fatal(err)
	}
	servers[0].ReplicateNow()

	if err := servers[0].Leave(); err != nil {
		t.Fatal(err)
	}
	convergeRing(servers[1], servers[2])

	// The home server is gone; Rejoin must find the new owner through
	// the fallback servers and their redirects, keeping the same BPID.
	if err := rc.Rejoin(id, "n1:200"); err != nil {
		t.Fatalf("rejoin after owner left: %v", err)
	}
	addr, online, err := rc.Lookup(id)
	if err != nil {
		t.Fatalf("lookup after rejoin: %v", err)
	}
	if addr != "n1:200" || !online {
		t.Fatalf("lookup = (%s, %v), want (n1:200, true)", addr, online)
	}

	// Deregister routes the same way and pins the record offline.
	if err := rc.Deregister(id); err != nil {
		t.Fatalf("deregister: %v", err)
	}
	_, online, err = rc.Lookup(id)
	if err != nil {
		t.Fatal(err)
	}
	if online {
		t.Fatal("deregistered member still online")
	}

	// An unknown BPID from the departed issuer is a clean ErrUnknown,
	// not a transport error.
	bogus := wire.BPID{LIGLO: servers[0].Addr(), Node: id.Node + 999}
	if _, _, err := rc.Lookup(bogus); !errors.Is(err, ErrUnknown) {
		t.Fatalf("bogus lookup err = %v, want ErrUnknown", err)
	}
}

// TestRingHintsSpanServers: a registrant's initial-peer hints draw on
// replicated foreign records, so a fleet whose nodes register at
// different ring servers still bootstraps connectivity. Without the
// foreign fill-in, each partitioned server would hand out only its own
// registrants — zero hints for the first node at every server.
func TestRingHintsSpanServers(t *testing.T) {
	nw, servers := ringServers(t, 3)
	convergeRing(servers...)

	c := NewClient(nw)
	defer c.Close()
	first, _, err := c.Register(servers[0].Addr(), "n1:100")
	if err != nil {
		t.Fatal(err)
	}
	servers[0].ReplicateNow()

	// servers[1] has no local registrants, but holds n1 as a replica.
	_, peers, err := c.Register(servers[1].Addr(), "n2:100")
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, p := range peers {
		if p.ID == first && p.Addr == "n1:100" {
			found = true
		}
	}
	if !found {
		t.Fatalf("hints from %s = %v, want replicated record for %v",
			servers[1].Addr(), peers, first)
	}

	// A departed replica must never be handed out as a hint.
	rc := NewClientOpts(nw, ClientOptions{RingServers: ringAddrs(servers)})
	defer rc.Close()
	if err := rc.Deregister(first); err != nil {
		t.Fatal(err)
	}
	servers[0].ReplicateNow()
	_, peers, err = c.Register(servers[2].Addr(), "n3:100")
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range peers {
		if p.ID == first {
			t.Fatalf("hints from %s include departed %v: %v",
				servers[2].Addr(), first, peers)
		}
	}
}
