GO ?= go

.PHONY: all build vet lint vetself vetgolden test race chaos fuzz cover adminsmoke bench churnsoak churnbench ci clean

all: build vet lint test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Project-invariant checks: bpvet enforces the transport/agent/codec
# discipline (see DESIGN.md "Enforced invariants"), and gofmt keeps the
# tree canonically formatted. Findings recorded in the committed baseline
# are tolerated (burn-down ledger); anything new fails the run.
lint:
	$(GO) run ./cmd/bpvet -baseline bpvet.baseline.json ./...
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

# The analyzers are held to their own rules: bpvet over its own source
# and driver, with no baseline.
vetself:
	$(GO) run ./cmd/bpvet ./internal/vet ./cmd/bpvet

# Golden-fixture drift guard: regenerate the committed analyzer-output
# files and fail if that dirties the tree — wording or ordering changes
# must land as reviewed golden diffs, never silently.
vetgolden:
	$(GO) test ./internal/vet/ -run TestFixtureGolden -update
	@git diff --exit-code -- internal/vet/testdata/golden || \
		{ echo "bpvet golden fixtures drifted: review and commit the diff above"; exit 1; }

test:
	$(GO) test ./...

# Full suite under the race detector — the bar every PR must clear.
race:
	$(GO) test -race ./...

# Just the fault-injection suites: chaos scenarios over faultnet plus
# the transport hardening tests.
chaos:
	$(GO) test -race -run 'TestChaos' ./internal/core/
	$(GO) test -race ./internal/transport/...

# Short fuzz passes over the wire codec and agent packet decoders.
# Each target gets a few seconds — enough to shake out regressions in
# the corpus without turning CI into a fuzz farm.
FUZZTIME ?= 5s
fuzz:
	$(GO) test -run '^$$' -fuzz FuzzDecodeEnvelope -fuzztime $(FUZZTIME) ./internal/wire/
	$(GO) test -run '^$$' -fuzz FuzzDecoder -fuzztime $(FUZZTIME) ./internal/wire/
	$(GO) test -run '^$$' -fuzz FuzzDecodePacket -fuzztime $(FUZZTIME) ./internal/agent/
	$(GO) test -run '^$$' -fuzz FuzzDecodeResults -fuzztime $(FUZZTIME) ./internal/agent/
	$(GO) test -run '^$$' -fuzz FuzzCompileFilter -fuzztime $(FUZZTIME) ./internal/agent/
	$(GO) test -run '^$$' -fuzz FuzzFingerprint -fuzztime $(FUZZTIME) ./internal/agent/
	$(GO) test -run '^$$' -fuzz FuzzDecodeDepart -fuzztime $(FUZZTIME) ./internal/core/
	$(GO) test -run '^$$' -fuzz FuzzDecodeObject -fuzztime $(FUZZTIME) ./internal/storm/
	$(GO) test -run '^$$' -fuzz FuzzChordCodecs -fuzztime $(FUZZTIME) ./internal/chord/
	$(GO) test -run '^$$' -fuzz FuzzRingCodecs -fuzztime $(FUZZTIME) ./internal/liglo/

# Coverage profile across every package, suitable for `go tool cover`
# and for upload as a CI artifact.
COVERPROFILE ?= coverage.out
cover:
	$(GO) test -covermode=atomic -coverprofile=$(COVERPROFILE) ./...
	@$(GO) tool cover -func=$(COVERPROFILE) | tail -1

# End-to-end smoke of the observability surfaces: boots the daemon stack
# with -admin semantics and scrapes /metrics, /healthz and a query trace
# over real HTTP, then boots two nodes plus the fleet observatory and
# scrapes the merged fleet snapshot, /fleet/health (rules armed, both
# members up, nothing firing) and /fleet/dashboard the same way.
adminsmoke:
	$(GO) test -race -count=1 -run 'TestAdminEndpointSmoke' ./cmd/bestpeer/
	$(GO) test -race -count=1 -run 'TestFleetObservatorySmoke' ./cmd/bpobs/
	$(GO) test -race -count=1 -run 'TestLigloRingSmoke' ./cmd/liglo/

# Machine-readable benchmark report: every simulated figure (including
# the flood-vs-qroute traffic comparison and the churn-at-scale run
# with its health/alert timeline) plus the reconfiguration-convergence
# timelines, as committed in BENCH_PR9.json and uploaded as a CI
# artifact.
BENCHJSON ?= BENCH_PR9.json
bench:
	$(GO) run ./cmd/bpbench -fig all -json $(BENCHJSON)

# The T4 chord-vs-flood-vs-BPR comparison (static wire-frame run plus
# the churn trace), as committed in BENCH_PR10.json and uploaded as a
# CI artifact.
DHTJSON ?= BENCH_PR10.json
dhtbench:
	$(GO) run ./cmd/bpbench -fig dht -json $(DHTJSON)

# Bounded race-enabled churn soak: a live 8-node fleet under kill/restart
# churn with queries flowing, asserting post-churn recall recovery and
# zero leaked goroutines. ~60s of churn plus recovery and teardown.
CHURNSOAK_MS ?= 60000
churnsoak:
	CHURNSOAK_MS=$(CHURNSOAK_MS) $(GO) test -race -count=1 -timeout 300s \
		-run 'TestChurnSoak' -v ./internal/bench/

# Churn-at-scale benchmark artifact alone (10k-node simulated fleet).
CHURNJSON ?= churn-report.json
churnbench:
	$(GO) run ./cmd/bpbench -fig churn -json $(CHURNJSON)

ci: build vet lint vetself vetgolden race fuzz adminsmoke cover

clean:
	$(GO) clean -testcache
