package observatory

import (
	"bestpeer/internal/obs"
)

// Round is one query's entry in a convergence timeline, folded from the
// structured event journal: how the query fanned out, what answered from
// how far, and how the reconfiguration that followed edited the overlay.
type Round struct {
	// Query is the query's MsgID in hex.
	Query string `json:"query"`
	// Strategy is the reconfiguration policy active for the round.
	Strategy string `json:"strategy,omitempty"`
	// FanOut is how many direct peers the query was cloned to.
	FanOut int `json:"fan_out"`
	// Answers is the total results collected (summed over batches).
	Answers int `json:"answers"`
	// AnswerBatches is how many answer batches arrived.
	AnswerBatches int `json:"answer_batches"`
	// MeanAnswerHops is the answer-weighted mean hop distance of the
	// batches — the paper's convergence signal: under BPR it falls as
	// providers are promoted to direct peers; under BPS it stays flat.
	MeanAnswerHops float64 `json:"mean_answer_hops"`
	// MaxAnswerHops is the farthest batch's distance.
	MaxAnswerHops int `json:"max_answer_hops"`
	// PeersAdded and PeersDropped are the overlay edits attributed to
	// this round (reconfig promotions, liveness drops).
	PeersAdded   []string `json:"peers_added,omitempty"`
	PeersDropped []string `json:"peers_dropped,omitempty"`
	// EditDistance is the overlay edit distance of the round: adds plus
	// drops. Zero means the round converged (no topology change).
	EditDistance int `json:"edit_distance"`
	// Scores is the reconfiguration rationale journalled for the round,
	// when an EvReconfigured event was observed.
	Scores []obs.PeerScore `json:"scores,omitempty"`
}

// Timeline folds journal events into per-query convergence rounds, in
// query-issued order. Answered, reconfigured and peer-added events are
// attributed to their round by query id; peer-dropped events (which
// carry no query) attach to the most recent round. Events for queries
// whose query-issued event was evicted or lost are skipped — overflow is
// the journal's accounted-loss regime, not a reason to invent rounds.
func Timeline(events []obs.Event) []Round {
	var rounds []Round
	index := make(map[string]int) // query id -> rounds index
	var hopWeight []float64       // per round: answer-weighted hop sum
	var weight []float64          // per round: total weight
	for _, e := range events {
		switch e.Kind {
		case obs.EvQueryIssued:
			index[e.Query] = len(rounds)
			rounds = append(rounds, Round{
				Query:    e.Query,
				Strategy: e.Strategy,
				FanOut:   e.Count,
			})
			hopWeight = append(hopWeight, 0)
			weight = append(weight, 0)
		case obs.EvAgentAnswered:
			i, ok := index[e.Query]
			if !ok {
				continue
			}
			r := &rounds[i]
			r.Answers += e.Count
			r.AnswerBatches++
			w := float64(e.Count)
			if w < 1 {
				w = 1 // an empty batch still marks a responding peer
			}
			hopWeight[i] += w * float64(e.Hops)
			weight[i] += w
			if e.Hops > r.MaxAnswerHops {
				r.MaxAnswerHops = e.Hops
			}
		case obs.EvReconfigured:
			i, ok := index[e.Query]
			if !ok {
				continue
			}
			r := &rounds[i]
			if r.Strategy == "" {
				r.Strategy = e.Strategy
			}
			r.Scores = e.Scores
		case obs.EvPeerAdded:
			i, ok := index[e.Query]
			if !ok {
				continue // join/topology adds are not round edits
			}
			rounds[i].PeersAdded = append(rounds[i].PeersAdded, e.Peer)
		case obs.EvPeerDropped:
			if len(rounds) == 0 {
				continue
			}
			i := len(rounds) - 1
			if j, ok := index[e.Query]; ok {
				i = j
			}
			rounds[i].PeersDropped = append(rounds[i].PeersDropped, e.Peer)
		}
	}
	for i := range rounds {
		if weight[i] > 0 {
			rounds[i].MeanAnswerHops = hopWeight[i] / weight[i]
		}
		rounds[i].EditDistance = len(rounds[i].PeersAdded) + len(rounds[i].PeersDropped)
	}
	return rounds
}

// MeanHopsTrend extracts the mean-answer-hops series from a timeline —
// the scalar the paper's BPR-vs-BPS convergence argument is about.
func MeanHopsTrend(rounds []Round) []float64 {
	out := make([]float64, len(rounds))
	for i, r := range rounds {
		out[i] = r.MeanAnswerHops
	}
	return out
}
