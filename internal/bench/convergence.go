package bench

import (
	"fmt"

	"bestpeer/internal/obs"
	"bestpeer/internal/observatory"
	"bestpeer/internal/reconfig"
	"bestpeer/internal/topology"
)

// StrategyTimeline is one strategy's convergence record: the per-round
// timeline folded from the journal the simulated base node emitted — the
// same event pipeline a live node feeds, so the bench proves the
// observability path, not just the simulator.
type StrategyTimeline struct {
	Strategy string              `json:"strategy"`
	Rounds   []observatory.Round `json:"rounds"`
	// EventsJournalled is how many structured events the run emitted.
	EventsJournalled uint64 `json:"events_journalled"`
}

// MeanHops returns the per-round mean answer hops.
func (st *StrategyTimeline) MeanHops() []float64 {
	return observatory.MeanHopsTrend(st.Rounds)
}

// convergenceRounds is how many successive repeats of the query the
// convergence experiment runs per strategy.
const convergenceRounds = 6

// Convergence reproduces the paper's self-reconfiguration claim as a
// timeline: the same query repeated on a sparse random overlay with the
// answers planted at the nodes furthest from the base (the Fig. 8
// workload). Under BPR the answer providers are promoted to direct peers
// after the first round, so mean answer hops fall; under BPS the overlay
// never changes and the trend is flat. The timeline is folded from the
// base's event journal, not from simulator internals.
func Convergence(cost CostModel, seed int64) []*StrategyTimeline {
	const n, peerBudget = 32, 8
	tp := topology.Random(n, peerBudget/2, seed) // sparse start; budget allows growth
	spec := fig8Spec(tp, seed)
	p := Params{
		Cost: cost, Spec: spec, Query: "needle",
		MaxPeers: peerBudget, IncludeData: false,
	}
	var out []*StrategyTimeline
	for _, strat := range []reconfig.Strategy{reconfig.MaxCount{}, reconfig.Static{}} {
		// A capacity comfortably above the event volume: overflow here
		// would silently truncate the timeline's early rounds.
		journal := obs.NewJournal("sim-base", 16384)
		RunBestPeerObserved(tp, p, convergenceRounds, strat, journal)
		events, _, missed := journal.Since(0, 0)
		if missed > 0 {
			// Should be impossible at this capacity; surface it in the
			// timeline rather than hiding a truncated record.
			events = append([]obs.Event{{Kind: obs.EvMessageDropped,
				Reason: fmt.Sprintf("journal overflow: %d events lost", missed)}}, events...)
		}
		out = append(out, &StrategyTimeline{
			Strategy:         strat.Name(),
			Rounds:           observatory.Timeline(events),
			EventsJournalled: journal.Total(),
		})
	}
	return out
}

// FigConvergence renders the convergence timelines as a figure: mean
// answer hops per round, one series per strategy (BPR = maxcount,
// BPS = static).
func FigConvergence(cost CostModel, seed int64) *Figure {
	fig := &Figure{
		ID: "convergence", Title: "Reconfiguration convergence: mean answer hops per round (32 nodes, random)",
		XLabel: "round", YLabel: "mean answer hops",
	}
	for _, st := range Convergence(cost, seed) {
		name := "BPR"
		if st.Strategy == "static" {
			name = "BPS"
		}
		s := Series{Name: name}
		for i, m := range st.MeanHops() {
			s.Points = append(s.Points, Point{float64(i + 1), m})
		}
		fig.Series = append(fig.Series, s)
	}
	return fig
}
