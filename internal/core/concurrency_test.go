package core

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"bestpeer/internal/agent"
	"bestpeer/internal/storm"
	"bestpeer/internal/topology"
)

// TestConcurrentQueriesFromOneNode: distinct outstanding queries at the
// same base must not cross-contaminate answers.
func TestConcurrentQueriesFromOneNode(t *testing.T) {
	const kinds = 4
	c := newCluster(t, 5, nil, func(i int, s *storm.Store) {
		for k := 0; k < kinds; k++ {
			s.Put(&storm.Object{
				Name:     fmt.Sprintf("n%d-k%d", i, k),
				Keywords: []string{fmt.Sprintf("topic%d", k)},
				Data:     []byte{byte(k)},
			})
		}
	})
	c.wire(topology.Star(5))

	var wg sync.WaitGroup
	errs := make(chan error, kinds)
	for k := 0; k < kinds; k++ {
		k := k
		wg.Add(1)
		go func() {
			defer wg.Done()
			res, err := c.nodes[0].Query(&agent.KeywordAgent{Query: fmt.Sprintf("topic%d", k)},
				QueryOptions{Timeout: 3 * time.Second, WaitAnswers: 5, NoReconfigure: true})
			if err != nil {
				errs <- err
				return
			}
			if len(res.Answers) != 5 {
				errs <- fmt.Errorf("topic%d: %d answers", k, len(res.Answers))
				return
			}
			for _, a := range res.Answers {
				want := fmt.Sprintf("k%d", k)
				if a.Result.Name[len(a.Result.Name)-2:] != want {
					errs <- fmt.Errorf("topic%d got foreign answer %s", k, a.Result.Name)
					return
				}
			}
			errs <- nil
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}

// TestConcurrentQueriesFromManyNodes: every node queries at once; each
// gets the full answer set.
func TestConcurrentQueriesFromManyNodes(t *testing.T) {
	const n = 6
	c := newCluster(t, n, func(i int, cfg *Config) { cfg.MaxPeers = n }, func(i int, s *storm.Store) {
		s.Put(&storm.Object{Name: fmt.Sprintf("shared-%d", i), Keywords: []string{"common"}})
	})
	c.wire(topology.Random(n, 2, 3))

	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			res, err := c.nodes[i].Query(&agent.KeywordAgent{Query: "common"},
				QueryOptions{Timeout: 3 * time.Second, WaitAnswers: n, NoReconfigure: true})
			if err != nil {
				errs <- err
				return
			}
			if len(res.Answers) != n {
				errs <- fmt.Errorf("node %d saw %d answers, want %d", i, len(res.Answers), n)
				return
			}
			errs <- nil
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}

// TestQueriesDuringReconfiguration: reconfiguring while other queries are
// in flight never loses answers or deadlocks.
func TestQueriesDuringReconfiguration(t *testing.T) {
	const n = 5
	c := newCluster(t, n, func(i int, cfg *Config) { cfg.MaxPeers = 3 }, func(i int, s *storm.Store) {
		s.Put(&storm.Object{Name: fmt.Sprintf("r-%d", i), Keywords: []string{"r"}})
	})
	c.wire(topology.Line(n))

	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for q := 0; q < 8; q++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			res, err := c.nodes[0].Query(&agent.KeywordAgent{Query: "r"},
				QueryOptions{Timeout: 3 * time.Second, WaitAnswers: n})
			if err != nil {
				errs <- err
				return
			}
			if len(res.Answers) < n {
				errs <- fmt.Errorf("%d answers, want >= %d", len(res.Answers), n)
				return
			}
			errs <- nil
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	// The node stayed within its budget and kept valid peers.
	if got := len(c.nodes[0].Peers()); got > 3 {
		t.Fatalf("peer budget exceeded: %d", got)
	}
}
