package liglo

import (
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"testing"

	"bestpeer/internal/wire"
)

// Selector bytes prefixing FuzzRingCodecs inputs: which decoder the
// remaining bytes are fed to.
const (
	fzRedirectMsg = iota
	fzReplicateMsg
	fzReplicateOK
)

// ringSeeds are the committed corpus inputs, one per ring wire kind, at
// the current payload version. TestWriteRingCorpusSeeds regenerates the
// files under testdata/fuzz/FuzzRingCodecs from this table.
func ringSeeds() map[string][]byte {
	sel := func(which byte, body []byte) []byte {
		return append([]byte{which}, body...)
	}
	return map[string][]byte{
		"redirectmsg-v1": sel(fzRedirectMsg, encodeRedirectMsg(&redirectMsg{
			Version: ringRedirectVersion, Addr: "liglo-2", Key: 0xDEADBEEF})),
		"replicatemsg-v1": sel(fzReplicateMsg, encodeReplicateMsg(&replicateMsg{
			Version: ringReplicateVersion, From: "liglo-1",
			Records: []RingRecord{
				{ID: wire.BPID{LIGLO: "liglo-1", Node: 1}, Addr: "n1:100", Online: true},
				{ID: wire.BPID{LIGLO: "liglo-1", Node: 2}, Addr: "n2:100", Departed: true},
			}})),
		"replicateok-v1": sel(fzReplicateOK, encodeReplicateOK(&replicateOK{
			Version: ringReplicateVersion})),
	}
}

// FuzzRingCodecs: arbitrary bytes through every ring payload decoder
// must never panic, and every accepted payload must re-encode to a
// decodable equivalent.
func FuzzRingCodecs(f *testing.F) {
	for _, seed := range ringSeeds() {
		f.Add(seed)
	}
	f.Add([]byte{})
	f.Add([]byte{fzReplicateMsg, 0xFF, 0xFF, 0xFF, 0xFF})

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) == 0 {
			return
		}
		body := data[1:]
		switch data[0] % 3 {
		case fzRedirectMsg:
			m, err := decodeRedirectMsg(body)
			if err != nil {
				return
			}
			back, err := decodeRedirectMsg(encodeRedirectMsg(m))
			if err != nil || back.Addr != m.Addr || back.Key != m.Key {
				t.Fatalf("redirectMsg round trip: %+v %v", back, err)
			}
		case fzReplicateMsg:
			m, err := decodeReplicateMsg(body)
			if err != nil {
				return
			}
			back, err := decodeReplicateMsg(encodeReplicateMsg(m))
			if err != nil || back.From != m.From || len(back.Records) != len(m.Records) {
				t.Fatalf("replicateMsg round trip: %+v %v", back, err)
			}
			for i := range m.Records {
				if back.Records[i] != m.Records[i] {
					t.Fatalf("replicateMsg record %d: %+v != %+v", i, back.Records[i], m.Records[i])
				}
			}
		case fzReplicateOK:
			m, err := decodeReplicateOK(body)
			if err != nil {
				return
			}
			back, err := decodeReplicateOK(encodeReplicateOK(m))
			if err != nil || back.Err != m.Err {
				t.Fatalf("replicateOK round trip: %+v %v", back, err)
			}
		}
	})
}

// TestWriteRingCorpusSeeds regenerates the committed corpus files from
// ringSeeds. Run with LIGLO_WRITE_SEEDS=1 after changing a codec.
func TestWriteRingCorpusSeeds(t *testing.T) {
	if os.Getenv("LIGLO_WRITE_SEEDS") == "" {
		t.Skip("seed writer; set LIGLO_WRITE_SEEDS=1 to regenerate testdata")
	}
	dir := filepath.Join("testdata", "fuzz", "FuzzRingCodecs")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	for name, seed := range ringSeeds() {
		content := fmt.Sprintf("go test fuzz v1\n[]byte(%s)\n", strconv.Quote(string(seed)))
		if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}
