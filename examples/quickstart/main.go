// Quickstart: an eight-node BestPeer network in one process.
//
// It builds a line of nodes (worst case for a static network), stores a
// few objects at each, and issues the same keyword query twice from the
// left end. The first query routes through every intermediate peer; the
// reconfiguration step then promotes the answer providers to direct
// peers, so the second query's agents reach them directly. (Clones of
// the agent still flood the old path too — whichever copy arrives first
// executes, so the reported hop count of an answer may reflect either
// route; the promotion itself is what cuts the time to reach providers.)
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"bestpeer/internal/agent"
	"bestpeer/internal/core"
	"bestpeer/internal/storm"
	"bestpeer/internal/transport"
)

const nodes = 8

func main() {
	dir, err := os.MkdirTemp("", "bestpeer-quickstart")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// One in-process network; every node gets its own StorM store.
	nw := transport.NewInProc()
	cluster := make([]*core.Node, nodes)
	for i := range cluster {
		store, err := storm.Open(filepath.Join(dir, fmt.Sprintf("node%d.storm", i)), storm.Options{})
		if err != nil {
			log.Fatal(err)
		}
		defer store.Close()

		// Every node shares a couple of objects; only the two far ends
		// of the line hold what we will search for.
		store.Put(&storm.Object{
			Name:     fmt.Sprintf("notes-%d", i),
			Keywords: []string{"notes"},
			Data:     []byte(fmt.Sprintf("daily notes of node %d", i)),
		})
		if i >= nodes-2 {
			store.Put(&storm.Object{
				Name:     fmt.Sprintf("jazz-album-%d", i),
				Keywords: []string{"jazz"},
				Data:     []byte("… 1 KB of audio, honest …"),
			})
		}

		cluster[i], err = core.NewNode(core.Config{
			Network:    nw,
			ListenAddr: fmt.Sprintf("peer-%d", i),
			Store:      store,
			MaxPeers:   4,
		})
		if err != nil {
			log.Fatal(err)
		}
		defer cluster[i].Close()
	}

	// Wire the line: peer-0 — peer-1 — … — peer-7.
	for i, n := range cluster {
		var peers []core.Peer
		if i > 0 {
			peers = append(peers, core.Peer{Addr: cluster[i-1].Addr()})
		}
		if i < nodes-1 {
			peers = append(peers, core.Peer{Addr: cluster[i+1].Addr()})
		}
		n.SetPeers(peers)
	}

	base := cluster[0]
	for round := 1; round <= 2; round++ {
		res, err := base.Query(&agent.KeywordAgent{Query: "jazz"}, core.QueryOptions{
			Timeout:     time.Second,
			WaitAnswers: 2,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("round %d: %d answers in %v\n", round, len(res.Answers),
			res.Elapsed.Round(time.Millisecond))
		for _, a := range res.Answers {
			fmt.Printf("  %-14s from %s at hop %d\n", a.Result.Name, a.PeerAddr, a.Hops)
		}
		fmt.Printf("  direct peers now: %v\n\n", base.PeerAddrs())

		// Establish connections to freshly promoted peers so the next
		// round's direct agent copies win the race against relayed ones.
		for _, p := range base.Peers() {
			base.Probe(p.Addr, time.Second)
		}
	}
}
