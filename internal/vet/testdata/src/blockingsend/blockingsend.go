// Package blockingsend is a bpvet golden-test fixture; the analyzer
// opts in via the testdata/src/blockingsend path.
package blockingsend

import "time"

func badUnguarded(ch chan int) {
	ch <- 1 // want `unguarded channel send`
}

func badShutdownOnly(ch chan int, done chan struct{}) {
	select {
	case ch <- 1: // want `channel send in select without default or timeout`
	case <-done:
	}
}

func goodDefault(ch chan int) bool {
	select {
	case ch <- 1:
		return true
	default:
		return false
	}
}

func goodTimeout(ch chan int) {
	select {
	case ch <- 1:
	case <-time.After(time.Second):
	}
}

func goodTimerChan(ch chan int, t *time.Timer) {
	select {
	case ch <- 1:
	case <-t.C:
	}
}

// A send in a case BODY is a plain send, not the guarded comm of the
// select it sits in.
func badSendInCaseBody(ch chan int, done chan struct{}) {
	select {
	case <-done:
		ch <- 1 // want `unguarded channel send`
	default:
	}
}
