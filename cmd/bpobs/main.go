// Command bpobs runs the BestPeer fleet observatory: it scrapes the
// admin endpoints of a set of member nodes (their /metrics.json,
// /healthz, /peers and /events journals), merges the event streams into
// a fleet-wide snapshot, folds each scrape through the fleet health
// engine, and serves the result:
//
//	/fleet              the full snapshot (per-node views + merged events)
//	/fleet/topology     the overlay graph, node -> direct peers
//	/fleet/convergence  the reconfiguration-convergence timeline
//	/fleet/trace/<id>   cross-node trace assembly for one query
//	/fleet/timeseries   per-member derived signal history
//	/fleet/health       rule set, latest signals and firing alerts
//	/fleet/alerts       firing alerts plus the alert event journal
//	/fleet/dashboard    plain-text dashboard with sparklines
//
// Event cursors persist across scrapes, so each poll transfers only new
// events; journal overflow on a member shows up as a per-member missed
// count, never as silently absent history.
//
// The background scrape loop phase-shifts each member by a seeded hash
// of its address, so a large fleet is polled as a spread-out stream
// rather than a thundering herd at every interval tick.
//
// Usage:
//
//	bpobs -members 127.0.0.1:9090,127.0.0.1:9091 [-serve :8099]
//	      [-interval 5s] [-seed 1] [-once]
package main

import (
	"encoding/json"
	"flag"
	"hash/fnv"
	"log"
	"os"
	"os/signal"
	"strings"
	"sync"
	"syscall"
	"time"

	"bestpeer/internal/observatory"
)

func main() {
	members := flag.String("members", "", "comma-separated member admin addresses to scrape")
	serve := flag.String("serve", "", "serve the observatory on this address; ':port' binds loopback only; empty picks a loopback port")
	interval := flag.Duration("interval", 0, "background scrape interval (0 = scrape only on request)")
	seed := flag.Int64("seed", 1, "seed for the per-member scrape phase jitter")
	once := flag.Bool("once", false, "scrape once, print the fleet snapshot as JSON, and exit")
	flag.Parse()

	if *members == "" {
		log.Fatal("bpobs: -members is required (comma-separated admin addresses)")
	}
	var addrs []string
	for _, m := range strings.Split(*members, ",") {
		if m = strings.TrimSpace(m); m != "" {
			addrs = append(addrs, m)
		}
	}
	col := observatory.NewCollector(addrs...)

	if *once {
		snap := col.Scrape()
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(snap); err != nil {
			log.Fatalf("bpobs: encode snapshot: %v", err)
		}
		return
	}

	srv, err := observatory.StartServer(*serve, col)
	if err != nil {
		log.Fatalf("bpobs: %v", err)
	}
	log.Printf("bpobs: observing %d members on http://%s/fleet", len(addrs), srv.Addr())

	stop := make(chan struct{})
	var loops sync.WaitGroup
	if *interval > 0 {
		for _, addr := range addrs {
			loops.Add(1)
			go scrapeMemberLoop(col, addr, *interval, *seed, stop, &loops)
		}
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	close(stop)
	loops.Wait()
	snap := col.Snapshot()
	log.Printf("bpobs: shutting down with %d events collected, %d missed", len(snap.Events), snap.Missed)
	if err := srv.Close(); err != nil {
		log.Fatalf("bpobs: close: %v", err)
	}
}

// memberPhase is the deterministic scrape phase offset for one member:
// a seeded FNV-1a hash of the address folded into [0, interval). Same
// seed and members, same schedule — and distinct members land spread
// across the interval instead of on the tick.
func memberPhase(addr string, seed int64, interval time.Duration) time.Duration {
	h := fnv.New64a()
	var sb [8]byte
	for i := range sb {
		sb[i] = byte(seed >> (8 * i))
	}
	_, _ = h.Write(sb[:])        // hash.Hash.Write never errors
	_, _ = h.Write([]byte(addr)) // hash.Hash.Write never errors
	return time.Duration(h.Sum64() % uint64(interval))
}

// scrapeMemberLoop polls one member at the interval, phase-shifted by
// the member's jitter offset, so the fleet's scrapes form a spread
// stream. Per-member loops also keep one slow member from delaying
// everyone else's journal cursors.
func scrapeMemberLoop(col *observatory.Collector, addr string, every time.Duration, seed int64, stop <-chan struct{}, wg *sync.WaitGroup) {
	defer wg.Done()
	defer func() { recover() }() // a crashed poller must not take the observatory down
	phase := time.NewTimer(memberPhase(addr, seed, every))
	defer phase.Stop()
	select {
	case <-phase.C:
	case <-stop:
		return
	}
	col.ScrapeOne(addr)
	tick := time.NewTicker(every)
	defer tick.Stop()
	for {
		select {
		case <-tick.C:
			col.ScrapeOne(addr)
		case <-stop:
			return
		}
	}
}
