// Package statsdrift is a bpvet golden-test fixture.
package statsdrift

import "sync/atomic"

// view is the snapshot shape the fixture methods return.
type view struct {
	Sent    uint64
	Dropped uint64
}

// good: every atomic counter is read by Stats.
type goodStats struct {
	sent    atomic.Uint64
	dropped atomic.Uint64
	name    string // non-counter fields are not checked
}

func (g *goodStats) Stats() view {
	return view{Sent: g.sent.Load(), Dropped: g.dropped.Load()}
}

// bad: Stats forgets one counter.
type badStats struct {
	sent    atomic.Uint64
	dropped atomic.Uint64 // want `atomic counter field badStats\.dropped is not read by Stats\(\)`
}

func (b *badStats) Stats() view {
	return view{Sent: b.sent.Load()}
}

// Snapshot is held to the same rule as Stats.
type badSnapshot struct {
	hits   atomic.Int64 // want `atomic counter field badSnapshot\.hits is not read by Snapshot\(\)`
	misses atomic.Int64
}

func (s *badSnapshot) Snapshot() view {
	return view{Sent: uint64(s.misses.Load())}
}

// good: reads that happen through a same-package helper still count.
type helperStats struct {
	sent    atomic.Uint64
	dropped atomic.Uint64
}

func (h *helperStats) Stats() view { return h.collect() }

func (h *helperStats) collect() view {
	return view{Sent: h.sent.Load(), Dropped: h.dropped.Load()}
}

// good: a struct without a snapshot method is out of scope, however it
// uses its counters.
type freeCounter struct {
	loose atomic.Uint64
}

func (f *freeCounter) Bump() { f.loose.Add(1) }
