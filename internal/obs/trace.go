package obs

import (
	"sync"
	"time"

	"bestpeer/internal/wire"
)

// maxSpansPerTrace bounds how many spans one trace accumulates, so a
// pathological fan-out (or a hostile peer replaying span reports) cannot
// grow a trace without limit.
const maxSpansPerTrace = 4096

// QueryTrace is the base node's assembled record of one query's travel
// through the network: every hop span that made it back, in arrival
// order.
type QueryTrace struct {
	ID      wire.MsgID       `json:"id"`
	Base    string           `json:"base"`
	Started time.Time        `json:"started"`
	Spans   []wire.TraceSpan `json:"spans"`
}

// SpanNode is one vertex of the reconstructed trace tree: the span
// recorded at a peer, plus the spans recorded at peers it forwarded to.
type SpanNode struct {
	Span     wire.TraceSpan `json:"span"`
	Children []*SpanNode    `json:"children,omitempty"`
}

// Tree reconstructs the query's propagation tree from the flat span
// list by linking each span under the span of its Parent address. The
// returned roots are the base node's direct children (spans whose
// parent is the base, or whose parent never reported a span of its
// own — partial traces still render). Within one parent, children keep
// arrival order.
func (t *QueryTrace) Tree() []*SpanNode {
	nodes := make([]*SpanNode, len(t.Spans))
	// A peer can be visited more than once only via duplicate-drop
	// spans; index the first executed span per peer as the attachment
	// point.
	byPeer := make(map[string]*SpanNode, len(t.Spans))
	for i, s := range t.Spans {
		nodes[i] = &SpanNode{Span: s}
		if _, dup := byPeer[s.Peer]; !dup && s.Drop == "" {
			byPeer[s.Peer] = nodes[i]
		}
	}
	var roots []*SpanNode
	for _, n := range nodes {
		parent := n.Span.Parent
		if parent != "" && parent != t.Base {
			if p, ok := byPeer[parent]; ok && p != n {
				p.Children = append(p.Children, n)
				continue
			}
		}
		roots = append(roots, n)
	}
	return roots
}

// MaxHop returns the largest hop number recorded in the trace.
func (t *QueryTrace) MaxHop() int {
	max := 0
	for _, s := range t.Spans {
		if s.Hop > max {
			max = s.Hop
		}
	}
	return max
}

// Tracer assembles query traces at the base node. It keeps a bounded
// number of traces and evicts the oldest when full, so long-running
// nodes do not leak memory. All methods are safe for concurrent use.
type Tracer struct {
	mu       sync.Mutex
	capacity int
	traces   map[wire.MsgID]*QueryTrace
	order    []wire.MsgID // begin order, oldest first
}

// NewTracer returns a tracer retaining up to capacity traces (a
// sensible default is chosen for capacity <= 0).
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = 128
	}
	return &Tracer{capacity: capacity, traces: make(map[wire.MsgID]*QueryTrace)}
}

// Begin starts collecting spans for the query. Beginning an already
// tracked query is a no-op, so retries are safe.
func (tr *Tracer) Begin(id wire.MsgID, base string) {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	if _, ok := tr.traces[id]; ok {
		return
	}
	for len(tr.order) >= tr.capacity {
		delete(tr.traces, tr.order[0])
		tr.order = tr.order[1:]
	}
	tr.traces[id] = &QueryTrace{ID: id, Base: base, Started: time.Now()}
	tr.order = append(tr.order, id)
}

// Record appends a span to the query's trace. Spans for queries that
// were never begun (or already evicted) are dropped; the return value
// reports whether the span was kept.
func (tr *Tracer) Record(id wire.MsgID, span wire.TraceSpan) bool {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	t, ok := tr.traces[id]
	if !ok || len(t.Spans) >= maxSpansPerTrace {
		return false
	}
	t.Spans = append(t.Spans, span)
	return true
}

// Get returns a copy of the query's trace.
func (tr *Tracer) Get(id wire.MsgID) (*QueryTrace, bool) {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	t, ok := tr.traces[id]
	if !ok {
		return nil, false
	}
	cp := *t
	cp.Spans = append([]wire.TraceSpan(nil), t.Spans...)
	return &cp, true
}

// Recent returns copies of the most recently begun traces, newest
// first, at most n of them (all of them for n <= 0).
func (tr *Tracer) Recent(n int) []*QueryTrace {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	if n <= 0 || n > len(tr.order) {
		n = len(tr.order)
	}
	out := make([]*QueryTrace, 0, n)
	for i := len(tr.order) - 1; i >= 0 && len(out) < n; i-- {
		t := tr.traces[tr.order[i]]
		cp := *t
		cp.Spans = append([]wire.TraceSpan(nil), t.Spans...)
		out = append(out, &cp)
	}
	return out
}
