// Package vet is bpvet's engine: a small, dependency-free static
// analysis framework plus the project-specific analyzers that
// mechanically enforce the transport/agent discipline established in the
// hardening work (DESIGN.md §5, §6).
//
// The framework deliberately mirrors golang.org/x/tools/go/analysis in
// miniature — an Analyzer interface, a Pass carrying one type-checked
// package, and Diagnostics keyed by position — but is built exclusively
// on the standard library (go/ast, go/parser, go/types, go/importer) so
// go.mod stays dependency-free.
//
// Findings can be suppressed with a comment on the offending line or the
// line directly above it:
//
//	//bpvet:ignore <analyzer> [<analyzer>...] rationale...
//
// The rationale is free text; listing the analyzer names is mandatory so
// a suppression never outlives the rule it silences.
package vet

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Diagnostic is one finding, resolved to a file position.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

// String renders the driver's canonical "file:line: [name] message" form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Analyzer, d.Message)
}

// Pass carries one type-checked package through one analyzer.
type Pass struct {
	Fset    *token.FileSet
	Files   []*ast.File
	PkgPath string
	Pkg     *types.Package
	Info    *types.Info

	analyzer string
	out      *[]Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.out = append(*p.out, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.analyzer,
		Message:  fmt.Sprintf(format, args...),
	})
}

// TypeOf returns the type of an expression, or nil when unknown.
func (p *Pass) TypeOf(e ast.Expr) types.Type { return p.Info.TypeOf(e) }

// Analyzer is one invariant checker.
type Analyzer interface {
	// Name is the short identifier used in output and in
	// //bpvet:ignore comments.
	Name() string
	// Doc is a one-line description of the enforced rule.
	Doc() string
	// Run inspects one package and reports findings on the pass.
	Run(p *Pass)
}

// All returns the full bpvet analyzer suite in stable order.
func All() []Analyzer {
	return []Analyzer{
		lockedsend{},
		nakedgo{},
		blockingsend{},
		busypoll{},
		droppederr{},
		ttlpair{},
		statsdrift{},
		eventdrift{},
	}
}

// Run applies the analyzers to every package, filters suppressed
// findings, and returns the remainder sorted by position.
func Run(pkgs []*Package, analyzers []Analyzer) []Diagnostic {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			pass := &Pass{
				Fset:     pkg.Fset,
				Files:    pkg.Files,
				PkgPath:  pkg.Path,
				Pkg:      pkg.Types,
				Info:     pkg.Info,
				analyzer: a.Name(),
				out:      &diags,
			}
			a.Run(pass)
		}
		diags = filterSuppressed(pkg, diags)
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		return a.Analyzer < b.Analyzer
	})
	return diags
}

// filterSuppressed drops findings in pkg's files that a //bpvet:ignore
// comment on the same or the preceding line covers. Findings from other
// packages pass through untouched.
func filterSuppressed(pkg *Package, diags []Diagnostic) []Diagnostic {
	// file -> line -> suppressed analyzer names.
	suppressed := make(map[string]map[int]map[string]bool)
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				names := parseIgnore(c.Text)
				if len(names) == 0 {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				byLine := suppressed[pos.Filename]
				if byLine == nil {
					byLine = make(map[int]map[string]bool)
					suppressed[pos.Filename] = byLine
				}
				set := byLine[pos.Line]
				if set == nil {
					set = make(map[string]bool)
					byLine[pos.Line] = set
				}
				for _, n := range names {
					set[n] = true
				}
			}
		}
	}
	if len(suppressed) == 0 {
		return diags
	}
	kept := diags[:0]
	for _, d := range diags {
		byLine := suppressed[d.Pos.Filename]
		if byLine[d.Pos.Line][d.Analyzer] || byLine[d.Pos.Line-1][d.Analyzer] {
			continue
		}
		kept = append(kept, d)
	}
	return kept
}

// parseIgnore extracts analyzer names from a //bpvet:ignore comment.
// Names are the leading whitespace-separated tokens (trailing commas
// tolerated); everything after the first non-name token is rationale.
func parseIgnore(comment string) []string {
	text := strings.TrimSpace(strings.TrimPrefix(comment, "//"))
	rest, ok := strings.CutPrefix(text, "bpvet:ignore")
	if !ok {
		return nil
	}
	known := make(map[string]bool)
	for _, a := range All() {
		known[a.Name()] = true
	}
	var names []string
	for _, tok := range strings.Fields(rest) {
		tok = strings.TrimRight(tok, ",:")
		if !known[tok] {
			break
		}
		names = append(names, tok)
	}
	return names
}

// --- shared AST helpers used by several analyzers ---

// walkStack traverses root in source order, calling fn with every node
// and the stack of its ancestors (outermost first, not including n).
func walkStack(root ast.Node, fn func(n ast.Node, stack []ast.Node)) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		fn(n, stack)
		stack = append(stack, n)
		return true
	})
}

// funcBodies yields every function body in the file — declarations and
// literals — paired with a printable name. Each body is yielded once;
// analyzers that treat function scopes independently should skip nested
// FuncLit subtrees themselves when walking a body.
func funcBodies(file *ast.File, fn func(name string, body *ast.BlockStmt)) {
	ast.Inspect(file, func(n ast.Node) bool {
		switch d := n.(type) {
		case *ast.FuncDecl:
			if d.Body != nil {
				fn(d.Name.Name, d.Body)
			}
		case *ast.FuncLit:
			fn("func literal", d.Body)
		}
		return true
	})
}

// inspectSameFunc walks body but does not descend into nested function
// literals, so findings stay scoped to one function.
func inspectSameFunc(body ast.Node, fn func(n ast.Node) bool) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, isLit := n.(*ast.FuncLit); isLit && n != body {
			return false
		}
		return fn(n)
	})
}

// errorType reports whether t is the built-in error interface.
var errorIface = types.Universe.Lookup("error").Type()

func isErrorType(t types.Type) bool {
	return t != nil && types.Identical(t, errorIface)
}

// deref removes one level of pointer indirection.
func deref(t types.Type) types.Type {
	if p, ok := t.(*types.Pointer); ok {
		return p.Elem()
	}
	return t
}

// namedFrom returns the named type behind t (after deref), or nil.
func namedFrom(t types.Type) *types.Named {
	if t == nil {
		return nil
	}
	n, _ := deref(t).(*types.Named)
	return n
}

// isPkgType reports whether t (possibly behind a pointer) is the named
// type pkgPath.name.
func isPkgType(t types.Type, pkgPath, name string) bool {
	n := namedFrom(t)
	if n == nil {
		return false
	}
	obj := n.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == pkgPath && obj.Name() == name
}

// containsRecover reports whether the body calls the recover builtin
// directly (not inside a nested function literal).
func containsRecover(info *types.Info, body ast.Node) bool {
	found := false
	inspectSameFunc(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "recover" {
			if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin || info.Uses[id] == nil {
				found = true
			}
		}
		return true
	})
	return found
}
