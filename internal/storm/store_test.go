package storm

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"path/filepath"
	"strings"
	"testing"
)

func tempStore(t *testing.T, opts Options) *Store {
	t.Helper()
	s, err := Open(filepath.Join(t.TempDir(), "data.storm"), opts)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func obj(name string, kws []string, size int) *Object {
	data := make([]byte, size)
	for i := range data {
		data[i] = byte(i)
	}
	return &Object{Name: name, Keywords: kws, Data: data}
}

func TestStorePutGet(t *testing.T) {
	s := tempStore(t, Options{})
	o := obj("doc-1", []string{"jazz", "music"}, 1024)
	oid, err := s.Put(o)
	if err != nil {
		t.Fatalf("put: %v", err)
	}
	got, err := s.Get("doc-1")
	if err != nil {
		t.Fatalf("get: %v", err)
	}
	if got.Name != "doc-1" || !bytes.Equal(got.Data, o.Data) || len(got.Keywords) != 2 {
		t.Fatalf("object mismatch: %+v", got)
	}
	byOID, err := s.GetOID(oid)
	if err != nil || byOID.Name != "doc-1" {
		t.Fatalf("GetOID: %+v, %v", byOID, err)
	}
	if !s.Has("doc-1") || s.Has("doc-2") {
		t.Fatal("Has broken")
	}
	if s.Len() != 1 {
		t.Fatalf("Len = %d", s.Len())
	}
}

func TestStoreGetMissing(t *testing.T) {
	s := tempStore(t, Options{})
	if _, err := s.Get("nope"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("want ErrNotFound, got %v", err)
	}
	if err := s.Delete("nope"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("delete missing: %v", err)
	}
	if _, err := s.GetOID(OID{Page: 1, Slot: 9}); err == nil {
		t.Fatal("GetOID of absent location succeeded")
	}
}

func TestStorePutReplacesByName(t *testing.T) {
	s := tempStore(t, Options{})
	s.Put(obj("x", []string{"a"}, 100))
	s.Put(obj("x", []string{"b"}, 200))
	if s.Len() != 1 {
		t.Fatalf("replace created duplicate: Len = %d", s.Len())
	}
	got, _ := s.Get("x")
	if len(got.Data) != 200 || got.Keywords[0] != "b" {
		t.Fatalf("replacement not visible: %+v", got)
	}
	// Replace with a record too big for in-place update.
	s.Put(obj("x", []string{"c"}, 3000))
	got, _ = s.Get("x")
	if len(got.Data) != 3000 {
		t.Fatalf("grow-replace failed: %d bytes", len(got.Data))
	}
	if s.Len() != 1 {
		t.Fatalf("grow-replace duplicated: Len = %d", s.Len())
	}
}

func TestStoreRejectsEmptyNameAndOversize(t *testing.T) {
	s := tempStore(t, Options{})
	if _, err := s.Put(&Object{}); err == nil {
		t.Fatal("empty name accepted")
	}
	if _, err := s.Put(obj("big", nil, MaxRecordSize)); !errors.Is(err, ErrBadObject) {
		t.Fatalf("oversize object: %v", err)
	}
}

func TestStoreDeleteFreesSpaceForReuse(t *testing.T) {
	s := tempStore(t, Options{})
	for i := 0; i < 12; i++ {
		if _, err := s.Put(obj(fmt.Sprintf("o%02d", i), nil, 1000)); err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
	}
	before := s.file.PageCount()
	for i := 0; i < 12; i++ {
		if err := s.Delete(fmt.Sprintf("o%02d", i)); err != nil {
			t.Fatalf("delete %d: %v", i, err)
		}
	}
	for i := 0; i < 12; i++ {
		if _, err := s.Put(obj(fmt.Sprintf("n%02d", i), nil, 1000)); err != nil {
			t.Fatalf("re-put %d: %v", i, err)
		}
	}
	if after := s.file.PageCount(); after != before {
		t.Fatalf("space not reused: %d pages -> %d", before, after)
	}
}

func TestStorePersistenceAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "p.storm")
	s, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		o := obj(fmt.Sprintf("obj-%03d", i), []string{fmt.Sprintf("kw%d", i%7)}, 900)
		o.Kind = ActiveObject
		o.ActiveClass = "redactor"
		if _, err := s.Put(o); err != nil {
			t.Fatalf("put: %v", err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	r, err := Open(path, Options{BufferFrames: 4})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer r.Close()
	if r.Len() != 50 {
		t.Fatalf("reopened Len = %d", r.Len())
	}
	got, err := r.Get("obj-013")
	if err != nil {
		t.Fatalf("get after reopen: %v", err)
	}
	if got.Kind != ActiveObject || got.ActiveClass != "redactor" || len(got.Data) != 900 {
		t.Fatalf("object lost fields: %+v", got)
	}
	// Free-space map rebuilt: inserts go onto existing pages when possible.
	pagesBefore := r.file.PageCount()
	r.Delete("obj-000")
	if _, err := r.Put(obj("fresh", nil, 800)); err != nil {
		t.Fatal(err)
	}
	if r.file.PageCount() != pagesBefore {
		t.Fatal("reopen lost the free-space map")
	}
}

func TestStoreScanAndMatch(t *testing.T) {
	s := tempStore(t, Options{})
	s.Put(&Object{Name: "song-blue", Keywords: []string{"jazz"}, Data: []byte("x")})
	s.Put(&Object{Name: "song-red", Keywords: []string{"rock"}, Data: []byte("y")})
	s.Put(&Object{Name: "paper-jazz-history", Keywords: []string{"history"}, Data: []byte("z")})

	count := 0
	if err := s.Scan(func(o *Object) bool { count++; return true }); err != nil {
		t.Fatal(err)
	}
	if count != 3 {
		t.Fatalf("scan saw %d", count)
	}

	hits, err := s.Match("jazz")
	if err != nil {
		t.Fatal(err)
	}
	// "jazz" keyword on song-blue, substring of name on paper-jazz-history.
	if len(hits) != 2 {
		t.Fatalf("Match(jazz) = %d hits", len(hits))
	}

	hits, _ = s.Match("JAZZ")
	if len(hits) != 2 {
		t.Fatal("matching is not case-insensitive")
	}

	if hits, _ := s.Match(""); len(hits) != 0 {
		t.Fatal("empty query must match nothing")
	}

	big, err := s.MatchFunc(func(o *Object) bool { return len(o.Data) >= 1 })
	if err != nil || len(big) != 3 {
		t.Fatalf("MatchFunc = %d, %v", len(big), err)
	}
}

func TestStoreScanEarlyStop(t *testing.T) {
	s := tempStore(t, Options{})
	for i := 0; i < 10; i++ {
		s.Put(obj(fmt.Sprintf("o%d", i), nil, 10))
	}
	n := 0
	s.Scan(func(o *Object) bool { n++; return n < 4 })
	if n != 4 {
		t.Fatalf("early stop failed: %d", n)
	}
}

func TestStoreNamesSorted(t *testing.T) {
	s := tempStore(t, Options{})
	for _, n := range []string{"zeta", "alpha", "mid"} {
		s.Put(obj(n, nil, 4))
	}
	names := s.Names()
	if len(names) != 3 || names[0] != "alpha" || names[2] != "zeta" {
		t.Fatalf("Names = %v", names)
	}
}

func TestStoreSmallBufferPoolThrashes(t *testing.T) {
	// 1000 x ~1KB objects through a 4-frame pool: forces evictions and
	// dirty write-back, then verifies everything persisted.
	s := tempStore(t, Options{BufferFrames: 4})
	for i := 0; i < 1000; i++ {
		o := obj(fmt.Sprintf("obj-%04d", i), []string{fmt.Sprintf("kw%d", i%13)}, 1024)
		if _, err := s.Put(o); err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
	}
	if s.Pool().Evictions == 0 {
		t.Fatal("expected evictions with a 4-frame pool")
	}
	hits, err := s.Match("kw7")
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) != 1000/13+1 {
		t.Fatalf("Match(kw7) = %d", len(hits))
	}
	for _, h := range hits {
		if len(h.Data) != 1024 {
			t.Fatalf("object %s corrupted: %d bytes", h.Name, len(h.Data))
		}
	}
}

func TestStoreEveryPolicyPersists(t *testing.T) {
	for _, pol := range []string{"lru", "mru", "fifo", "clock", "priority"} {
		t.Run(pol, func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "d.storm")
			s, err := Open(path, Options{BufferFrames: 3, Policy: pol})
			if err != nil {
				t.Fatal(err)
			}
			if s.Pool().Policy() != pol {
				t.Fatalf("policy = %q", s.Pool().Policy())
			}
			for i := 0; i < 120; i++ {
				if _, err := s.Put(obj(fmt.Sprintf("o%03d", i), nil, 512)); err != nil {
					t.Fatalf("put: %v", err)
				}
			}
			if err := s.Close(); err != nil {
				t.Fatal(err)
			}
			r, err := Open(path, Options{Policy: pol})
			if err != nil {
				t.Fatal(err)
			}
			defer r.Close()
			if r.Len() != 120 {
				t.Fatalf("policy %s lost objects: %d", pol, r.Len())
			}
		})
	}
}

func TestStoreConcurrentReaders(t *testing.T) {
	s := tempStore(t, Options{BufferFrames: 8})
	for i := 0; i < 200; i++ {
		s.Put(obj(fmt.Sprintf("o%03d", i), []string{"k"}, 256))
	}
	errs := make(chan error, 8)
	for g := 0; g < 8; g++ {
		go func(seed int64) {
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 100; i++ {
				name := fmt.Sprintf("o%03d", rng.Intn(200))
				o, err := s.Get(name)
				if err != nil {
					errs <- err
					return
				}
				if o.Name != name {
					errs <- fmt.Errorf("read wrong object: %s != %s", o.Name, name)
					return
				}
			}
			errs <- nil
		}(int64(g))
	}
	for g := 0; g < 8; g++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
}

func TestStoreConcurrentMixedWorkload(t *testing.T) {
	s := tempStore(t, Options{BufferFrames: 8})
	done := make(chan error, 4)
	for g := 0; g < 4; g++ {
		g := g
		go func() {
			for i := 0; i < 100; i++ {
				name := fmt.Sprintf("g%d-o%d", g, i)
				if _, err := s.Put(obj(name, []string{"k"}, 128)); err != nil {
					done <- err
					return
				}
				if _, err := s.Get(name); err != nil {
					done <- err
					return
				}
				if i%3 == 0 {
					if err := s.Delete(name); err != nil {
						done <- err
						return
					}
				}
			}
			done <- nil
		}()
	}
	for g := 0; g < 4; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	// Each goroutine deleted ceil(100/3)=34 of its 100.
	if want := 4 * (100 - 34); s.Len() != want {
		t.Fatalf("Len = %d, want %d", s.Len(), want)
	}
}

func TestObjectMatchesSemantics(t *testing.T) {
	o := &Object{Name: "Annual-Report-2001", Keywords: []string{"finance", "Q4"}}
	cases := []struct {
		q    string
		want bool
	}{
		{"finance", true},
		{"FINANCE", true},
		{"q4", true},
		{"report", true}, // substring of name
		{"fin", false},   // keyword prefixes don't match
		{"missing", false},
		{"", false},
	}
	for _, c := range cases {
		if got := o.Matches(c.q); got != c.want {
			t.Errorf("Matches(%q) = %v, want %v", c.q, got, c.want)
		}
	}
}

func TestObjectCloneIsDeep(t *testing.T) {
	o := &Object{Name: "x", Keywords: []string{"a"}, Data: []byte{1, 2}}
	c := o.Clone()
	c.Keywords[0] = "b"
	c.Data[0] = 9
	if o.Keywords[0] != "a" || o.Data[0] != 1 {
		t.Fatal("Clone is shallow")
	}
}

func TestObjectEncodeDecodeRoundTrip(t *testing.T) {
	o := &Object{
		Name:        "active-doc",
		Keywords:    []string{"k1", "k2", "k3"},
		Kind:        ActiveObject,
		ActiveClass: "salary-redactor",
		Data:        bytes.Repeat([]byte{0xAB}, 777),
	}
	rec, err := encodeObject(o)
	if err != nil {
		t.Fatal(err)
	}
	got, err := decodeObject(rec)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != o.Name || got.Kind != o.Kind || got.ActiveClass != o.ActiveClass ||
		!bytes.Equal(got.Data, o.Data) || strings.Join(got.Keywords, ",") != "k1,k2,k3" {
		t.Fatalf("round trip mismatch: %+v", got)
	}
}

func TestDecodeObjectRejectsGarbage(t *testing.T) {
	if _, err := decodeObject([]byte{99, 1, 2, 3}); err == nil {
		t.Fatal("bad version accepted")
	}
	if _, err := decodeObject(nil); err == nil {
		t.Fatal("empty record accepted")
	}
	o := &Object{Name: "x", Data: []byte("d")}
	rec, _ := encodeObject(o)
	if _, err := decodeObject(append(rec, 0)); err == nil {
		t.Fatal("trailing byte accepted")
	}
}
