package liglo

import (
	"time"

	"bestpeer/internal/chord"
	"bestpeer/internal/obs"
	"bestpeer/internal/transport"
	"bestpeer/internal/wire"
)

// RingConfig turns a LIGLO server into one member of a Chord ring that
// partitions BPID resolution by key ownership. A BPID's ring key is the
// hash of its issuing server's address, so a server owns its own
// members' keys while it lives; successor-list replication keeps those
// records resolvable at the next owner after it leaves or crashes —
// removing both the single-server capacity limit and the single point
// of failure of the paper's fixed name servers.
type RingConfig struct {
	// Join is an existing ring member to attach to; empty creates a
	// fresh ring.
	Join string
	// Successors is the chord successor-list length — also the
	// replication factor for member records. Zero selects the chord
	// default.
	Successors int
	// StabilizeEvery, FixFingersEvery and CheckPredEvery are the chord
	// maintenance cadences; zero selects the chord defaults.
	StabilizeEvery  time.Duration
	FixFingersEvery time.Duration
	CheckPredEvery  time.Duration
	// ReplicateEvery is the anti-entropy cadence: how often the full
	// record set is re-pushed to the current successors. Zero defaults
	// to 2s; negative disables the loop (ReplicateNow stays available).
	ReplicateEvery time.Duration
}

// Routing outcomes for a BPID in ring mode.
const (
	routeLocal    = iota // our own member table
	routeForeign         // we own the key: serve from the replica table
	routeRedirect        // another server owns the key
)

// startRing builds and starts the server's chord node, then the
// replication loop. Called from NewServer after the listener is up —
// chord RPCs to this server dispatch through the same accept loop.
func (s *Server) startRing() error {
	rc := s.cfg.Ring
	s.ring = chord.New(s.network, s.Addr(), chord.Config{
		Successors:      rc.Successors,
		StabilizeEvery:  rc.StabilizeEvery,
		FixFingersEvery: rc.FixFingersEvery,
		CheckPredEvery:  rc.CheckPredEvery,
		Metrics:         s.metrics,
		Journal:         s.cfg.Journal,
	})
	if rc.Join == "" {
		s.ring.Create()
	} else if err := s.ring.Join(rc.Join); err != nil {
		return err
	}
	every := rc.ReplicateEvery
	if every == 0 {
		every = 2 * time.Second
	}
	if every > 0 {
		s.replicateEvery = every
		s.wg.Add(1)
		go s.replicateLoop()
	}
	return nil
}

// Ring exposes the server's chord node — nil outside ring mode. Hosts
// use it for admin snapshots; tests use it to force convergence.
func (s *Server) Ring() *chord.Node { return s.ring }

// routeID decides who serves a request for id. Outside ring mode this
// is the legacy rule: local members only, ErrWrongHome otherwise. In
// ring mode a foreign BPID hashes to a ring position; we serve it from
// the replica table when we own that position and redirect to the owner
// otherwise. Must be called without s.mu held — resolving the owner can
// take ring RPCs.
func (s *Server) routeID(id wire.BPID) (int, chord.NodeRef, chord.Key, error) {
	if id.LIGLO == s.Addr() {
		return routeLocal, chord.NodeRef{}, 0, nil
	}
	if s.ring == nil {
		return 0, chord.NodeRef{}, 0, ErrWrongHome
	}
	key := chord.HashString(id.LIGLO)
	if s.ring.Owns(key) {
		return routeForeign, chord.NodeRef{}, key, nil
	}
	owner, _, err := s.ring.FindOwner(key)
	if err != nil {
		return 0, chord.NodeRef{}, key, err
	}
	if owner.Addr == s.Addr() {
		return routeForeign, chord.NodeRef{}, key, nil
	}
	return routeRedirect, owner, key, nil
}

// redirectReply names the owning server for a key we do not own.
func (s *Server) redirectReply(op string, owner chord.NodeRef, key chord.Key) *wire.Envelope {
	s.redirects.Inc()
	s.cfg.Journal.Append(obs.Event{Kind: obs.EvRingRedirected, Peer: owner.Addr, Reason: op})
	return reply(wire.KindRingRedirect, encodeRedirectMsg(&redirectMsg{
		Version: ringRedirectVersion, Addr: owner.Addr, Key: uint64(key),
	}))
}

// foreignRejoin serves a rejoin for a replicated record we own.
func (s *Server) foreignRejoin(r *rejoinReq) *wire.Envelope {
	s.mu.Lock()
	defer s.mu.Unlock()
	rec, ok := s.foreign[r.ID.String()]
	if !ok {
		return reply(wire.KindLigloStatus, encodeRejoinResp(&rejoinResp{Err: ErrUnknown.Error()}))
	}
	rec.Addr = r.Addr
	rec.Online = true
	rec.Departed = false
	s.foreign[r.ID.String()] = rec
	s.rejoins.Inc()
	s.cfg.Journal.Append(obs.Event{Kind: obs.EvMemberOnline, Peer: r.Addr, Reason: "rejoin"})
	return reply(wire.KindLigloStatus, encodeRejoinResp(&rejoinResp{}))
}

// foreignLookup serves a lookup from the replica table.
func (s *Server) foreignLookup(r *lookupReq) *wire.Envelope {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.lookups.Inc()
	rec, ok := s.foreign[r.ID.String()]
	if !ok {
		return reply(wire.KindLigloStatus, encodeLookupResp(&lookupResp{Found: false}))
	}
	return reply(wire.KindLigloStatus, encodeLookupResp(&lookupResp{
		Found: true, Addr: rec.Addr, Online: rec.Online,
	}))
}

// foreignDeregister marks a replicated record gracefully departed.
func (s *Server) foreignDeregister(r *deregisterReq) *wire.Envelope {
	s.mu.Lock()
	rec, ok := s.foreign[r.ID.String()]
	if !ok {
		s.mu.Unlock()
		return reply(wire.KindLigloStatus, encodeDeregisterResp(&deregisterResp{Err: ErrUnknown.Error()}))
	}
	rec.Online = false
	rec.Departed = true
	s.foreign[r.ID.String()] = rec
	addr := rec.Addr
	s.mu.Unlock()
	s.deregisters.Inc()
	s.cfg.Journal.Append(obs.Event{Kind: obs.EvMemberDeregistered, Peer: addr})
	return reply(wire.KindLigloStatus, encodeDeregisterResp(&deregisterResp{}))
}

// handleReplicate folds a replication batch into the replica table.
// Records for our own members are skipped — the primary table is the
// authority for those.
func (s *Server) handleReplicate(m *replicateMsg) *wire.Envelope {
	s.mu.Lock()
	for _, r := range m.Records {
		if r.ID.LIGLO == s.Addr() {
			continue
		}
		s.foreign[r.ID.String()] = r
	}
	s.mu.Unlock()
	return reply(wire.KindRingReplicateOK, encodeReplicateOK(&replicateOK{Version: ringReplicateVersion}))
}

// snapshotRecords collects everything this server can vouch for: its
// own members plus the replicas it already holds, so replication chains
// survive consecutive failures.
func (s *Server) snapshotRecords() []RingRecord {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]RingRecord, 0, len(s.members)+len(s.foreign))
	for node, m := range s.members {
		out = append(out, RingRecord{
			ID:       wire.BPID{LIGLO: s.Addr(), Node: node},
			Addr:     m.addr,
			Online:   m.online,
			Departed: m.departed,
		})
	}
	for _, r := range s.foreign {
		out = append(out, r)
	}
	return out
}

// ForeignRecords returns how many replicated records the server holds.
func (s *Server) ForeignRecords() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.foreign)
}

// ReplicateNow pushes the full record set to every current ring
// successor and returns how many targets acknowledged.
func (s *Server) ReplicateNow() int {
	if s.ring == nil {
		return 0
	}
	records := s.snapshotRecords()
	if len(records) == 0 {
		return 0
	}
	acked := 0
	for _, succ := range s.ring.Snapshot().Successors {
		if succ.Addr == s.Addr() {
			continue
		}
		if err := s.replicateTo(succ.Addr, records); err != nil {
			continue
		}
		acked++
		s.replications.Inc()
		s.cfg.Journal.Append(obs.Event{
			Kind: obs.EvRingReplicated, Peer: succ.Addr, Count: len(records),
		})
	}
	return acked
}

// replicateTo ships one record batch to a successor.
func (s *Server) replicateTo(addr string, records []RingRecord) error {
	conn, err := transport.DialTimeout(s.network, addr, 2*time.Second)
	if err != nil {
		return err
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(5 * time.Second))
	wc := wire.NewConn(conn)
	req := reply(wire.KindRingReplicate, encodeReplicateMsg(&replicateMsg{
		Version: ringReplicateVersion, From: s.Addr(), Records: records,
	}))
	if err := wc.Send(req); err != nil {
		return err
	}
	resp, err := wc.Recv()
	if err != nil {
		return err
	}
	if resp.Kind != wire.KindRingReplicateOK {
		return ErrBadRequest
	}
	m, err := decodeReplicateOK(resp.Body)
	if err != nil {
		return err
	}
	if m.Err != "" {
		return ErrBadRequest
	}
	return nil
}

// replicateLoop is the anti-entropy pump: the record set re-replicates
// on a cadence so successor churn and record mutations both converge
// without per-mutation bookkeeping.
func (s *Server) replicateLoop() {
	defer s.wg.Done()
	defer s.contain()
	t := time.NewTicker(s.replicateEvery)
	defer t.Stop()
	for {
		select {
		case <-s.stopProbe:
			return
		case <-t.C:
			s.ReplicateNow()
		}
	}
}

// Leave departs the ring gracefully: the record set is pushed to the
// successors one last time, the chord neighbors get their handoff, and
// the server shuts down. Members keep their BPIDs — the new key owner
// serves them from its replica table.
func (s *Server) Leave() error {
	if s.ring != nil {
		s.ReplicateNow()
		_ = s.ring.Leave() // best-effort goodbye; failure detection covers the rest
	}
	return s.Close()
}
