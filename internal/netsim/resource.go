package netsim

import "time"

// Resource is a FIFO multi-server queue: up to Servers jobs are in service
// simultaneously, the rest wait in arrival order. It models both host CPUs
// (Servers = thread count) and link capacity (Servers = 1 gives
// store-and-forward serialization on the link).
type Resource struct {
	sim     *Sim
	servers int
	busy    int
	queue   []job

	// Busy time accounting, for utilization reporting.
	busySince  time.Duration
	busyTotal  time.Duration
	everServed uint64
}

type job struct {
	dur  time.Duration
	done func()
}

// NewResource creates a resource with the given number of servers
// (must be >= 1).
func NewResource(sim *Sim, servers int) *Resource {
	if servers < 1 {
		servers = 1
	}
	return &Resource{sim: sim, servers: servers}
}

// Submit enqueues a job that occupies one server for dur, then calls done
// (done may be nil). Jobs start in FIFO order as servers free up.
func (r *Resource) Submit(dur time.Duration, done func()) {
	if dur < 0 {
		dur = 0
	}
	if r.busy < r.servers {
		r.start(job{dur, done})
		return
	}
	r.queue = append(r.queue, job{dur, done})
}

func (r *Resource) start(j job) {
	if r.busy == 0 {
		r.busySince = r.sim.Now()
	}
	r.busy++
	r.everServed++
	r.sim.After(j.dur, func() {
		r.busy--
		if r.busy == 0 {
			r.busyTotal += r.sim.Now() - r.busySince
		}
		if j.done != nil {
			j.done()
		}
		if len(r.queue) > 0 && r.busy < r.servers {
			next := r.queue[0]
			r.queue = r.queue[1:]
			r.start(next)
		}
	})
}

// QueueLen returns the number of jobs waiting (not in service).
func (r *Resource) QueueLen() int { return len(r.queue) }

// InService returns the number of jobs currently being served.
func (r *Resource) InService() int { return r.busy }

// Served returns the total number of jobs ever started.
func (r *Resource) Served() uint64 { return r.everServed }

// BusyTime returns accumulated time during which at least one server was
// busy. If the resource is busy now, time since it became busy is included.
func (r *Resource) BusyTime() time.Duration {
	t := r.busyTotal
	if r.busy > 0 {
		t += r.sim.Now() - r.busySince
	}
	return t
}
