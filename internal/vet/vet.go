// Package vet is bpvet's engine: a small, dependency-free static
// analysis framework plus the project-specific analyzers that
// mechanically enforce the transport/agent discipline established in the
// hardening work (DESIGN.md §5, §6).
//
// The framework deliberately mirrors golang.org/x/tools/go/analysis in
// miniature — an Analyzer interface, a Pass carrying one type-checked
// package, and Diagnostics keyed by position — but is built exclusively
// on the standard library (go/ast, go/parser, go/types, go/importer) so
// go.mod stays dependency-free.
//
// Since v2 the framework has two analyzer shapes: PackageAnalyzer (one
// type-checked package at a time, like go/analysis) and ProgramAnalyzer
// (the whole module at once, over the call-graph substrate in
// callgraph.go). Run drives both from one analyzer list.
//
// Findings can be suppressed with a comment on the offending line or the
// line directly above it:
//
//	//bpvet:ignore <analyzer> [<analyzer>...] rationale...
//
// Both parts are mandatory: naming the analyzers ties the suppression to
// the rule it silences, and the rationale records why the finding is a
// false positive or an accepted risk. A bpvet:ignore comment with no
// known analyzer name or no rationale is itself reported (analyzer
// "ignore") and cannot be suppressed or baselined away.
package vet

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Diagnostic is one finding, resolved to a file position.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

// String renders the driver's canonical "file:line: [name] message" form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Analyzer, d.Message)
}

// Pass carries one type-checked package through one analyzer.
type Pass struct {
	Fset    *token.FileSet
	Files   []*ast.File
	PkgPath string
	Pkg     *types.Package
	Info    *types.Info

	analyzer string
	out      *[]Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.out = append(*p.out, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.analyzer,
		Message:  fmt.Sprintf(format, args...),
	})
}

// TypeOf returns the type of an expression, or nil when unknown.
func (p *Pass) TypeOf(e ast.Expr) types.Type { return p.Info.TypeOf(e) }

// ProgramPass carries the whole-program view through one ProgramAnalyzer.
type ProgramPass struct {
	Prog *Program

	analyzer string
	out      *[]Diagnostic
}

// Reportf records a finding at pos.
func (p *ProgramPass) Reportf(pos token.Pos, format string, args ...any) {
	*p.out = append(*p.out, Diagnostic{
		Pos:      p.Prog.Fset.Position(pos),
		Analyzer: p.analyzer,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Analyzer is one invariant checker: either a PackageAnalyzer or a
// ProgramAnalyzer (or both, though none currently is).
type Analyzer interface {
	// Name is the short identifier used in output and in
	// //bpvet:ignore comments.
	Name() string
	// Doc is a one-line description of the enforced rule.
	Doc() string
}

// PackageAnalyzer inspects one type-checked package at a time.
type PackageAnalyzer interface {
	Analyzer
	Run(p *Pass)
}

// ProgramAnalyzer inspects the whole loaded module at once, over the
// call-graph and flow-facts substrate.
type ProgramAnalyzer interface {
	Analyzer
	RunProgram(p *ProgramPass)
}

// All returns the full bpvet analyzer suite in stable order.
func All() []Analyzer {
	return []Analyzer{
		lockedsend{},
		nakedgo{},
		blockingsend{},
		busypoll{},
		droppederr{},
		ttlpair{},
		statsdrift{},
		eventdrift{},
		lockorder{},
		goleak{},
		codecdrift{},
	}
}

// Run applies the analyzers to every package, filters suppressed
// findings, and returns the remainder sorted by position. Malformed
// //bpvet:ignore comments are appended as findings of the pseudo
// analyzer "ignore"; those cannot themselves be suppressed.
func Run(pkgs []*Package, analyzers []Analyzer) []Diagnostic {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			pa, ok := a.(PackageAnalyzer)
			if !ok {
				continue
			}
			pass := &Pass{
				Fset:     pkg.Fset,
				Files:    pkg.Files,
				PkgPath:  pkg.Path,
				Pkg:      pkg.Types,
				Info:     pkg.Info,
				analyzer: a.Name(),
				out:      &diags,
			}
			pa.Run(pass)
		}
	}
	var prog *Program
	for _, a := range analyzers {
		pa, ok := a.(ProgramAnalyzer)
		if !ok {
			continue
		}
		if prog == nil {
			prog = BuildProgram(pkgs)
		}
		pa.RunProgram(&ProgramPass{Prog: prog, analyzer: a.Name(), out: &diags})
	}

	directives, bad := CollectIgnores(pkgs)
	diags = filterSuppressed(directives, diags)
	diags = append(diags, bad...)
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		return a.Analyzer < b.Analyzer
	})
	return diags
}

// IgnoreDirective is one well-formed //bpvet:ignore comment.
type IgnoreDirective struct {
	Pos       token.Position
	Analyzers []string
	Reason    string
}

// CollectIgnores scans every comment in pkgs for bpvet:ignore
// directives. Well-formed ones (at least one known analyzer name plus a
// non-empty rationale) are returned as directives; malformed ones come
// back as findings of the pseudo-analyzer "ignore".
func CollectIgnores(pkgs []*Package) ([]IgnoreDirective, []Diagnostic) {
	var dirs []IgnoreDirective
	var bad []Diagnostic
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					names, reason, isDirective := parseIgnore(c.Text)
					if !isDirective {
						continue
					}
					pos := pkg.Fset.Position(c.Pos())
					switch {
					case len(names) == 0:
						bad = append(bad, Diagnostic{
							Pos:      pos,
							Analyzer: "ignore",
							Message:  "bpvet:ignore names no known analyzer; write //bpvet:ignore <analyzer> <reason>",
						})
					case reason == "":
						bad = append(bad, Diagnostic{
							Pos:      pos,
							Analyzer: "ignore",
							Message: fmt.Sprintf("bpvet:ignore %s carries no reason; every suppression must say why",
								strings.Join(names, ", ")),
						})
					default:
						dirs = append(dirs, IgnoreDirective{Pos: pos, Analyzers: names, Reason: reason})
					}
				}
			}
		}
	}
	return dirs, bad
}

// filterSuppressed drops findings that a well-formed //bpvet:ignore
// directive on the same or the preceding line covers.
func filterSuppressed(directives []IgnoreDirective, diags []Diagnostic) []Diagnostic {
	if len(directives) == 0 {
		return diags
	}
	// file -> line -> suppressed analyzer names.
	suppressed := make(map[string]map[int]map[string]bool)
	for _, dir := range directives {
		byLine := suppressed[dir.Pos.Filename]
		if byLine == nil {
			byLine = make(map[int]map[string]bool)
			suppressed[dir.Pos.Filename] = byLine
		}
		set := byLine[dir.Pos.Line]
		if set == nil {
			set = make(map[string]bool)
			byLine[dir.Pos.Line] = set
		}
		for _, n := range dir.Analyzers {
			set[n] = true
		}
	}
	kept := diags[:0]
	for _, d := range diags {
		byLine := suppressed[d.Pos.Filename]
		if byLine[d.Pos.Line][d.Analyzer] || byLine[d.Pos.Line-1][d.Analyzer] {
			continue
		}
		kept = append(kept, d)
	}
	return kept
}

// parseIgnore splits a //bpvet:ignore comment into analyzer names and
// rationale. Names are the leading whitespace-separated tokens that
// match known analyzers (trailing commas/colons tolerated); everything
// after the first non-name token is the rationale. isDirective is false
// when the comment is not a bpvet:ignore directive at all.
func parseIgnore(comment string) (names []string, reason string, isDirective bool) {
	text := strings.TrimSpace(strings.TrimPrefix(comment, "//"))
	rest, ok := strings.CutPrefix(text, "bpvet:ignore")
	if !ok {
		return nil, "", false
	}
	known := make(map[string]bool)
	for _, a := range All() {
		known[a.Name()] = true
	}
	fields := strings.Fields(rest)
	i := 0
	for ; i < len(fields); i++ {
		tok := strings.TrimRight(fields[i], ",:")
		if !known[tok] {
			break
		}
		names = append(names, tok)
	}
	return names, strings.Join(fields[i:], " "), true
}

// --- shared AST helpers used by several analyzers ---

// walkStack traverses root in source order, calling fn with every node
// and the stack of its ancestors (outermost first, not including n).
func walkStack(root ast.Node, fn func(n ast.Node, stack []ast.Node)) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		fn(n, stack)
		stack = append(stack, n)
		return true
	})
}

// funcBodies yields every function body in the file — declarations and
// literals — paired with a printable name. Each body is yielded once;
// analyzers that treat function scopes independently should skip nested
// FuncLit subtrees themselves when walking a body.
func funcBodies(file *ast.File, fn func(name string, body *ast.BlockStmt)) {
	ast.Inspect(file, func(n ast.Node) bool {
		switch d := n.(type) {
		case *ast.FuncDecl:
			if d.Body != nil {
				fn(d.Name.Name, d.Body)
			}
		case *ast.FuncLit:
			fn("func literal", d.Body)
		}
		return true
	})
}

// inspectSameFunc walks body but does not descend into nested function
// literals, so findings stay scoped to one function.
func inspectSameFunc(body ast.Node, fn func(n ast.Node) bool) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, isLit := n.(*ast.FuncLit); isLit && n != body {
			return false
		}
		return fn(n)
	})
}

// errorType reports whether t is the built-in error interface.
var errorIface = types.Universe.Lookup("error").Type()

func isErrorType(t types.Type) bool {
	return t != nil && types.Identical(t, errorIface)
}

// deref removes one level of pointer indirection.
func deref(t types.Type) types.Type {
	if p, ok := t.(*types.Pointer); ok {
		return p.Elem()
	}
	return t
}

// namedFrom returns the named type behind t (after deref), or nil.
func namedFrom(t types.Type) *types.Named {
	if t == nil {
		return nil
	}
	n, _ := deref(t).(*types.Named)
	return n
}

// isPkgType reports whether t (possibly behind a pointer) is the named
// type pkgPath.name.
func isPkgType(t types.Type, pkgPath, name string) bool {
	n := namedFrom(t)
	if n == nil {
		return false
	}
	obj := n.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == pkgPath && obj.Name() == name
}

// containsRecover reports whether the body calls the recover builtin
// directly (not inside a nested function literal).
func containsRecover(info *types.Info, body ast.Node) bool {
	found := false
	inspectSameFunc(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "recover" {
			if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin || info.Uses[id] == nil {
				found = true
			}
		}
		return true
	})
	return found
}
