package observatory

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"strconv"
	"strings"

	"bestpeer/internal/obs"
)

// NewMux builds the observatory HTTP handler:
//
//	/fleet              scrape every member and return the fleet snapshot
//	/fleet/topology     the overlay graph from the latest scrape
//	/fleet/convergence  the convergence timeline folded from fleet events
//	/fleet/trace/<id>   cross-node trace assembly for one query
//	/fleet/timeseries   per-member derived signal history (?member=, ?series=, ?points=)
//	/fleet/health       rule set, latest signals and firing alerts per member
//	/fleet/alerts       firing alerts plus the alert event journal (?since=, ?max=)
//	/fleet/dashboard    the same, rendered as plain text with sparklines
//
// Every endpoint scrapes on demand, so a snapshot is never staler than
// its request.
func NewMux(c *Collector) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/fleet", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, c.Scrape())
	})
	mux.HandleFunc("/fleet/topology", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, c.Scrape().Topology())
	})
	mux.HandleFunc("/fleet/convergence", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, c.Scrape().Rounds())
	})
	mux.HandleFunc("/fleet/trace/", func(w http.ResponseWriter, r *http.Request) {
		id := strings.TrimPrefix(r.URL.Path, "/fleet/trace/")
		if id == "" {
			writeError(w, http.StatusBadRequest, "missing query id")
			return
		}
		c.Scrape() // pick up the latest journal entries first
		ft := c.AssembleTrace(id)
		if ft.Base == "" && len(ft.Spans) == 0 && len(ft.Events) == 0 {
			writeError(w, http.StatusNotFound, "unknown query id "+id)
			return
		}
		writeJSON(w, http.StatusOK, ft)
	})
	mux.HandleFunc("/fleet/timeseries", func(w http.ResponseWriter, r *http.Request) {
		c.Scrape()
		ts := c.Health().Series()
		member := r.URL.Query().Get("member")
		series := r.URL.Query().Get("series")
		points := 0
		if raw := r.URL.Query().Get("points"); raw != "" {
			n, err := strconv.Atoi(raw)
			if err != nil || n < 1 {
				writeError(w, http.StatusBadRequest, "bad points parameter")
				return
			}
			points = n
		}
		if member != "" && !ts.Has(member) {
			writeError(w, http.StatusNotFound, "unknown member "+member)
			return
		}
		out := make(map[string]map[string][]TSPoint)
		for m, byName := range ts.All() {
			if member != "" && m != member {
				continue
			}
			filtered := make(map[string][]TSPoint)
			for name, pts := range byName {
				if series != "" && name != series {
					continue
				}
				if points > 0 {
					pts = Downsample(pts, points)
				}
				filtered[name] = pts
			}
			out[m] = filtered
		}
		writeJSON(w, http.StatusOK, out)
	})
	mux.HandleFunc("/fleet/health", func(w http.ResponseWriter, r *http.Request) {
		c.Scrape()
		writeJSON(w, http.StatusOK, c.Health().View())
	})
	mux.HandleFunc("/fleet/alerts", func(w http.ResponseWriter, r *http.Request) {
		c.Scrape()
		q := r.URL.Query()
		since, max := uint64(0), 0
		if raw := q.Get("since"); raw != "" {
			v, err := strconv.ParseUint(raw, 10, 64)
			if err != nil {
				writeError(w, http.StatusBadRequest, "bad since cursor")
				return
			}
			since = v
		}
		if raw := q.Get("max"); raw != "" {
			v, err := strconv.Atoi(raw)
			if err != nil {
				writeError(w, http.StatusBadRequest, "bad max parameter")
				return
			}
			max = v
		}
		writeJSON(w, http.StatusOK, AlertsPage{
			Active: c.Health().Active(),
			Events: c.Health().Journal().Page(since, max),
		})
	})
	mux.HandleFunc("/fleet/dashboard", func(w http.ResponseWriter, r *http.Request) {
		c.Scrape()
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_, _ = fmt.Fprint(w, renderDashboard(c)) // client went away mid-response; nothing to do
	})
	return mux
}

// AlertsPage is the /fleet/alerts payload: the firing set plus one
// page of the alert event journal.
type AlertsPage struct {
	Active []Alert        `json:"active"`
	Events obs.EventsPage `json:"events"`
}

// writeJSON writes the status code, then the payload — in that order,
// because headers are immutable once the encoder writes its first
// byte.
func writeJSON(w http.ResponseWriter, status int, payload any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(payload) // client went away mid-response; nothing to do
}

// writeError writes a JSON error payload with the given status.
func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]string{"error": msg})
}

// Server is a running observatory HTTP endpoint.
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// StartServer binds the observatory mux and serves it in the background.
// Like the node admin endpoint, an empty addr means "127.0.0.1:0" and a
// bare ":port" binds loopback — the observatory aggregates fleet
// internals and is unauthenticated.
func StartServer(addr string, c *Collector) (*Server, error) {
	switch {
	case addr == "":
		addr = "127.0.0.1:0"
	case strings.HasPrefix(addr, ":"):
		addr = "127.0.0.1" + addr
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("observatory: listen: %w", err)
	}
	srv := &http.Server{Handler: NewMux(c)}
	go func() {
		defer func() { recover() }() // a crashed observatory must not take the process down
		_ = srv.Serve(ln)            // returns ErrServerClosed on Close; nothing to report
	}()
	return &Server{ln: ln, srv: srv}, nil
}

// Addr returns the bound address of the observatory endpoint.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the observatory endpoint.
func (s *Server) Close() error { return s.srv.Close() }
