package main

import (
	"bytes"
	"strings"
	"testing"
)

// fixtures lives under internal/vet; the driver tests run it from here
// via the -dir flag.
const fixtureDir = "../../internal/vet"

// TestRunReportsAndExitsNonZero drives the binary's run() over a fixture
// with known violations: findings must print in the canonical
// "file:line: [name] message" form and the exit code must be 1.
func TestRunReportsAndExitsNonZero(t *testing.T) {
	var out, errOut bytes.Buffer
	code := run([]string{"-dir", fixtureDir, "testdata/src/busypoll"}, &out, &errOut)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1 (stderr: %s)", code, errOut.String())
	}
	got := out.String()
	if !strings.Contains(got, "[busypoll]") {
		t.Errorf("output missing [busypoll] tag:\n%s", got)
	}
	if !strings.Contains(got, "busypoll.go:") {
		t.Errorf("output missing file:line prefix:\n%s", got)
	}
	if !strings.Contains(errOut.String(), "finding(s)") {
		t.Errorf("stderr missing findings summary: %q", errOut.String())
	}
}

// TestRunCleanExitsZero drives run() over the suppress fixture, whose
// violations are all //bpvet:ignore'd: exit 0, no output.
func TestRunCleanExitsZero(t *testing.T) {
	var out, errOut bytes.Buffer
	code := run([]string{"-dir", fixtureDir, "testdata/src/suppress"}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit code = %d, want 0\nstdout: %s\nstderr: %s", code, out.String(), errOut.String())
	}
	if out.Len() != 0 {
		t.Errorf("expected no output, got:\n%s", out.String())
	}
}

// TestRunList checks -list names all six analyzers.
func TestRunList(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-list"}, &out, &errOut); code != 0 {
		t.Fatalf("exit code = %d, want 0", code)
	}
	for _, name := range []string{"lockedsend", "nakedgo", "blockingsend", "busypoll", "droppederr", "ttlpair"} {
		if !strings.Contains(out.String(), name) {
			t.Errorf("-list output missing %q:\n%s", name, out.String())
		}
	}
}

// TestRunBadPattern checks load failures exit 2.
func TestRunBadPattern(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-dir", fixtureDir, "testdata/src/no-such-dir"}, &out, &errOut); code != 2 {
		t.Fatalf("exit code = %d, want 2", code)
	}
}
