// Package gnutella implements a Gnutella 0.4-style servant, the protocol
// the paper compares BestPeer against (via the FURI servant). The two
// properties that matter for the comparison are faithfully reproduced:
//
//  1. A servant's peer set is fixed — there is no reconfiguration, so
//     every run of the same query traverses the same path.
//  2. QueryHit descriptors are routed back along the reverse of the query
//     path, hop by hop, using per-GUID routing state — answers are not
//     returned directly.
//
// Ping/Pong discovery, TTL/Hops handling and GUID-based duplicate
// suppression follow the classic protocol.
package gnutella

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"bestpeer/internal/storm"
	"bestpeer/internal/transport"
	"bestpeer/internal/wire"
)

// ErrClosed reports use after Close.
var ErrClosed = errors.New("gnutella: servant closed")

// Hit is one QueryHit entry delivered to the query's initiator.
type Hit struct {
	// Origin is the address of the servant holding the file.
	Origin string
	// Name is the matching file name.
	Name string
	// At is the arrival time at the initiator, from query start.
	At time.Duration
	// Hops is how many hops the hit travelled back.
	Hops int
}

// Config configures a servant.
type Config struct {
	// Network supplies connectivity.
	Network transport.Network
	// ListenAddr is the address to bind.
	ListenAddr string
	// Store holds the servant's shared files. Gnutella shares file
	// names; Match runs against names and keywords as usual.
	Store *storm.Store
}

// queryMsg is the KindGnuQuery payload.
type queryMsg struct {
	Search string
}

// hitMsg is the KindGnuQueryHit payload.
type hitMsg struct {
	Origin string
	Names  []string
}

// pongMsg is the KindGnuPong payload.
type pongMsg struct {
	Addr  string
	Files uint64
}

func encodeQueryMsg(q *queryMsg) []byte {
	var e wire.Encoder
	e.String(q.Search)
	return e.Bytes()
}

func decodeQueryMsg(b []byte) (*queryMsg, error) {
	d := wire.NewDecoder(b)
	q := &queryMsg{Search: d.String()}
	if err := d.Finish(); err != nil {
		return nil, err
	}
	return q, nil
}

func encodeHitMsg(h *hitMsg) []byte {
	var e wire.Encoder
	e.String(h.Origin)
	e.Uvarint(uint64(len(h.Names)))
	for _, n := range h.Names {
		e.String(n)
	}
	return e.Bytes()
}

func decodeHitMsg(b []byte) (*hitMsg, error) {
	d := wire.NewDecoder(b)
	h := &hitMsg{Origin: d.String()}
	n := d.Uvarint()
	if n > uint64(wire.MaxFrameSize) {
		return nil, errors.New("gnutella: hit too large")
	}
	for i := uint64(0); i < n; i++ {
		h.Names = append(h.Names, d.String())
	}
	if err := d.Finish(); err != nil {
		return nil, err
	}
	return h, nil
}

func encodePongMsg(p *pongMsg) []byte {
	var e wire.Encoder
	e.String(p.Addr)
	e.Uvarint(p.Files)
	return e.Bytes()
}

func decodePongMsg(b []byte) (*pongMsg, error) {
	d := wire.NewDecoder(b)
	p := &pongMsg{Addr: d.String(), Files: d.Uvarint()}
	if err := d.Finish(); err != nil {
		return nil, err
	}
	return p, nil
}

type queryState struct {
	mu     sync.Mutex
	start  time.Time
	hits   []Hit
	target int
	done   chan struct{}
	closed bool
}

// Pong is a discovery response delivered to Ping.
type Pong struct {
	Addr  string
	Files uint64
}

type pingState struct {
	mu    sync.Mutex
	pongs []Pong
}

// Servant is one Gnutella node.
type Servant struct {
	cfg   Config
	store *storm.Store
	msgr  *transport.Messenger

	mu     sync.Mutex
	peers  []string
	routes map[wire.MsgID]string // GUID -> upstream hop
	seen   map[wire.MsgID]bool
	closed bool

	queries sync.Map // GUID -> *queryState
	pings   sync.Map // GUID -> *pingState

	// Stats.
	HitsRouted uint64
	// SendsFailed counts descriptors the transport refused or dropped
	// (unreachable, suspect or overloaded peers) — flooding is best-effort
	// and continues, but the loss stays visible to benchmarks.
	SendsFailed uint64
	Executed    uint64
}

// NewServant starts a servant.
func NewServant(cfg Config) (*Servant, error) {
	if cfg.Store == nil || cfg.Network == nil {
		return nil, errors.New("gnutella: Network and Store are required")
	}
	s := &Servant{
		cfg:    cfg,
		store:  cfg.Store,
		routes: make(map[wire.MsgID]string),
		seen:   make(map[wire.MsgID]bool),
	}
	m, err := transport.NewMessenger(cfg.Network, cfg.ListenAddr, s.handle)
	if err != nil {
		return nil, err
	}
	s.msgr = m
	return s, nil
}

// Addr returns the servant's address.
func (s *Servant) Addr() string { return s.msgr.Addr() }

// SetPeers fixes the servant's peer set (no reconfiguration, ever).
func (s *Servant) SetPeers(addrs []string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.peers = append([]string(nil), addrs...)
}

// Peers returns the fixed peer set.
func (s *Servant) Peers() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]string(nil), s.peers...)
}

// Close shuts the servant down.
func (s *Servant) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()
	return s.msgr.Close()
}

func (s *Servant) isClosed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closed
}

func (s *Servant) handle(env *wire.Envelope) {
	if s.isClosed() {
		return
	}
	switch env.Kind {
	case wire.KindGnuPing:
		s.handlePing(env)
	case wire.KindGnuPong:
		s.routeBack(env, func() {
			if v, ok := s.pings.Load(env.ID); ok {
				if p, err := decodePongMsg(env.Body); err == nil {
					ps := v.(*pingState)
					ps.mu.Lock()
					ps.pongs = append(ps.pongs, Pong{Addr: p.Addr, Files: p.Files})
					ps.mu.Unlock()
				}
			}
		})
	case wire.KindGnuQuery:
		s.handleQuery(env)
	case wire.KindGnuQueryHit:
		s.routeBack(env, func() { s.deliverHit(env) })
	}
}

// handlePing answers with a Pong (routed back) and floods the Ping.
func (s *Servant) handlePing(env *wire.Envelope) {
	if env.Expired() || s.markSeenAndRoute(env) {
		return
	}
	s.send(env.From, &wire.Envelope{
		Kind: wire.KindGnuPong, ID: env.ID, TTL: env.Hops + 1,
		From: s.Addr(), To: env.From,
		Body: encodePongMsg(&pongMsg{Addr: s.Addr(), Files: uint64(s.store.Len())}),
	})
	s.flood(env)
}

// handleQuery executes the search locally, sends a QueryHit back along
// the reverse path, and floods the query onward.
func (s *Servant) handleQuery(env *wire.Envelope) {
	if env.Expired() || s.markSeenAndRoute(env) {
		return
	}
	q, err := decodeQueryMsg(env.Body)
	if err != nil {
		return
	}
	matches, err := s.store.Match(q.Search)
	s.mu.Lock()
	s.Executed++
	s.mu.Unlock()
	if err == nil && len(matches) > 0 {
		names := make([]string, len(matches))
		for i, m := range matches {
			names[i] = m.Name
		}
		// The hit travels back through the node the query arrived from.
		// The hit starts at hop 1: it has one link to travel to reach the
		// upstream node, mirroring the query's initial Hops convention.
		s.send(env.From, &wire.Envelope{
			Kind: wire.KindGnuQueryHit, ID: env.ID, TTL: env.Hops + 1, Hops: 1,
			From: s.Addr(), To: env.From,
			Body: encodeHitMsg(&hitMsg{Origin: s.Addr(), Names: names}),
		})
	}
	s.flood(env)
}

// markSeenAndRoute records the descriptor GUID and its upstream hop.
// It reports true when the descriptor is a duplicate.
func (s *Servant) markSeenAndRoute(env *wire.Envelope) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.seen[env.ID] {
		return true
	}
	s.seen[env.ID] = true
	s.routes[env.ID] = env.From
	return false
}

// flood forwards a descriptor to all peers except the upstream hop.
// Copies that would arrive expired are not sent.
func (s *Servant) flood(env *wire.Envelope) {
	if env.TTL <= 1 {
		return
	}
	s.mu.Lock()
	peers := append([]string(nil), s.peers...)
	s.mu.Unlock()
	for _, p := range peers {
		if p == env.From {
			continue
		}
		s.send(p, env.Forwarded(s.Addr(), p))
	}
}

// routeBack forwards a response descriptor one hop toward the initiator,
// or delivers it locally when this servant originated the request.
func (s *Servant) routeBack(env *wire.Envelope, deliver func()) {
	if _, mine := s.queries.Load(env.ID); mine {
		deliver()
		return
	}
	if _, mine := s.pings.Load(env.ID); mine {
		deliver()
		return
	}
	s.mu.Lock()
	up, ok := s.routes[env.ID]
	if ok {
		s.HitsRouted++
	}
	s.mu.Unlock()
	if ok && up != "" {
		s.send(up, env.Forwarded(s.Addr(), up))
	}
}

func (s *Servant) deliverHit(env *wire.Envelope) {
	v, ok := s.queries.Load(env.ID)
	if !ok {
		return
	}
	h, err := decodeHitMsg(env.Body)
	if err != nil {
		return
	}
	qs := v.(*queryState)
	qs.mu.Lock()
	defer qs.mu.Unlock()
	if qs.closed {
		return
	}
	at := time.Since(qs.start)
	for _, name := range h.Names {
		qs.hits = append(qs.hits, Hit{Origin: h.Origin, Name: name, At: at, Hops: int(env.Hops)})
	}
	if qs.target > 0 && len(qs.hits) >= qs.target {
		qs.closed = true
		close(qs.done)
	}
}

func (s *Servant) send(to string, env *wire.Envelope) {
	if err := s.msgr.Send(to, env); err != nil {
		// Flooding is best-effort: an unreachable peer never stalls the
		// rest, but the drop is counted rather than silently swallowed.
		s.mu.Lock()
		s.SendsFailed++
		s.mu.Unlock()
	}
}

// QueryOptions tunes a query.
type QueryOptions struct {
	// TTL bounds flooding. Zero defaults to 7, the protocol's classic
	// value.
	TTL uint8
	// Timeout is the collection window. Zero defaults to one second.
	Timeout time.Duration
	// WaitHits stops early after this many hits.
	WaitHits int
}

// Query floods a search and collects QueryHits routed back to us.
func (s *Servant) Query(search string, opts QueryOptions) ([]Hit, error) {
	if s.isClosed() {
		return nil, ErrClosed
	}
	ttl := opts.TTL
	if ttl == 0 {
		ttl = 7
	}
	timeout := opts.Timeout
	if timeout <= 0 {
		timeout = time.Second
	}
	guid := wire.NewMsgID()
	qs := &queryState{start: time.Now(), target: opts.WaitHits, done: make(chan struct{})}
	s.queries.Store(guid, qs)
	defer s.queries.Delete(guid)

	s.mu.Lock()
	s.seen[guid] = true
	peers := append([]string(nil), s.peers...)
	s.mu.Unlock()

	// Local matches count as immediate hits.
	if matches, err := s.store.Match(search); err == nil {
		qs.mu.Lock()
		for _, m := range matches {
			qs.hits = append(qs.hits, Hit{Origin: s.Addr(), Name: m.Name, At: time.Since(qs.start)})
		}
		qs.mu.Unlock()
	}

	body := encodeQueryMsg(&queryMsg{Search: search})
	for _, p := range peers {
		s.send(p, &wire.Envelope{
			Kind: wire.KindGnuQuery, ID: guid, TTL: ttl, Hops: 1,
			From: s.Addr(), To: p, Body: body,
		})
	}
	select {
	case <-qs.done:
	case <-time.After(timeout):
	}
	qs.mu.Lock()
	out := append([]Hit(nil), qs.hits...)
	qs.closed = true
	qs.mu.Unlock()
	return out, nil
}

// Ping floods a Ping and collects Pongs for the given window — the
// protocol's network discovery.
func (s *Servant) Ping(timeout time.Duration) []Pong {
	if s.isClosed() {
		return nil
	}
	if timeout <= 0 {
		timeout = 500 * time.Millisecond
	}
	guid := wire.NewMsgID()
	ps := &pingState{}
	s.pings.Store(guid, ps)
	defer s.pings.Delete(guid)

	s.mu.Lock()
	s.seen[guid] = true
	peers := append([]string(nil), s.peers...)
	s.mu.Unlock()

	for _, p := range peers {
		s.send(p, &wire.Envelope{
			Kind: wire.KindGnuPing, ID: guid, TTL: 7, Hops: 1,
			From: s.Addr(), To: p,
		})
	}
	time.Sleep(timeout)
	ps.mu.Lock()
	defer ps.mu.Unlock()
	return append([]Pong(nil), ps.pongs...)
}

// String describes the servant.
func (s *Servant) String() string {
	return fmt.Sprintf("gnutella(%s, peers=%d)", s.Addr(), len(s.Peers()))
}
