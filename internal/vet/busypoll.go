package vet

import (
	"go/ast"
	"go/types"
	"strings"
)

// busypoll flags time.Sleep inside a loop. Sleep-in-a-loop is either a
// poll (burns CPU and adds latency — wait on a channel, timer or
// condition instead) or an uninterruptible backoff (a closing component
// stalls for the full wait — select on a stop channel instead). The
// faultnet package is exempt: injecting delay is its purpose.
type busypoll struct{}

func (busypoll) Name() string { return "busypoll" }
func (busypoll) Doc() string {
	return "time.Sleep inside a loop; wait on a channel or select on a stop channel instead"
}

func (b busypoll) Run(p *Pass) {
	if strings.Contains(p.PkgPath, "faultnet") {
		return
	}
	for _, file := range p.Files {
		walkStack(file, func(n ast.Node, stack []ast.Node) {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isTimeSleep(p, call) {
				return
			}
			if enclosingLoop(stack) {
				p.Reportf(call.Pos(), "time.Sleep in a loop; select on a stop channel or timer instead")
			}
		})
	}
}

// isTimeSleep reports whether call is time.Sleep from the time package.
func isTimeSleep(p *Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Sleep" {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	if pkg, ok := p.Info.Uses[id].(*types.PkgName); ok {
		return pkg.Imported().Path() == "time"
	}
	return false
}

// enclosingLoop reports whether the innermost enclosing for/range
// statement is inside the same function as the node.
func enclosingLoop(stack []ast.Node) bool {
	for i := len(stack) - 1; i >= 0; i-- {
		switch stack[i].(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			return true
		case *ast.FuncLit, *ast.FuncDecl:
			return false
		}
	}
	return false
}
