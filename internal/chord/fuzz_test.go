package chord

import (
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"testing"
)

// Selector bytes prefixing FuzzChordCodecs inputs: which decoder the
// remaining bytes are fed to.
const (
	fzLookupReq = iota
	fzLookupOK
	fzNotifyMsg
	fzNotifyOK
	fzProbeReq
	fzProbeOK
)

// chordSeeds are the committed corpus inputs, one per chord wire kind,
// at the current payload version. TestWriteChordCorpusSeeds regenerates
// the files under testdata/fuzz/FuzzChordCodecs from this table.
func chordSeeds() map[string][]byte {
	sel := func(which byte, body []byte) []byte {
		return append([]byte{which}, body...)
	}
	return map[string][]byte{
		"lookupreq-v1": sel(fzLookupReq, encodeLookupReq(&lookupReq{
			Version: chordLookupVersion, Key: HashString("needle"), Hops: 3})),
		"lookupok-v1": sel(fzLookupOK, encodeLookupOK(&lookupOK{
			Version: chordLookupVersion, Owner: RefFor("n7:100"), Hops: 5})),
		"notifymsg-v1": sel(fzNotifyMsg, encodeNotifyMsg(&notifyMsg{
			Version: chordNotifyVersion, Self: RefFor("n3:100"),
			Leaving: true, Repl: RefFor("n4:100")})),
		"notifyok-v1": sel(fzNotifyOK, encodeNotifyOK(&notifyOK{
			Version: chordNotifyVersion})),
		"probereq-v1": sel(fzProbeReq, encodeProbeReq(&probeReq{
			Version: chordProbeVersion, From: RefFor("n1:100")})),
		"probeok-v1": sel(fzProbeOK, encodeProbeOK(&probeOK{
			Version: chordProbeVersion, Self: RefFor("n2:100"),
			HasPred: true, Pred: RefFor("n1:100"),
			Succs: []NodeRef{RefFor("n3:100"), RefFor("n4:100")}})),
	}
}

// FuzzChordCodecs: arbitrary bytes through every chord payload decoder
// must never panic, and every accepted payload must re-encode to a
// decodable equivalent.
func FuzzChordCodecs(f *testing.F) {
	for _, seed := range chordSeeds() {
		f.Add(seed)
	}
	f.Add([]byte{})
	f.Add([]byte{fzProbeOK, 0xFF, 0xFF, 0xFF, 0xFF})

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) == 0 {
			return
		}
		body := data[1:]
		switch data[0] % 6 {
		case fzLookupReq:
			m, err := decodeLookupReq(body)
			if err != nil {
				return
			}
			back, err := decodeLookupReq(encodeLookupReq(m))
			if err != nil || back.Key != m.Key || back.Hops != m.Hops {
				t.Fatalf("lookupReq round trip: %+v %v", back, err)
			}
		case fzLookupOK:
			m, err := decodeLookupOK(body)
			if err != nil {
				return
			}
			back, err := decodeLookupOK(encodeLookupOK(m))
			if err != nil || back.Owner != m.Owner {
				t.Fatalf("lookupOK round trip: %+v %v", back, err)
			}
		case fzNotifyMsg:
			m, err := decodeNotifyMsg(body)
			if err != nil {
				return
			}
			back, err := decodeNotifyMsg(encodeNotifyMsg(m))
			if err != nil || back.Self != m.Self || back.Leaving != m.Leaving {
				t.Fatalf("notifyMsg round trip: %+v %v", back, err)
			}
		case fzNotifyOK:
			m, err := decodeNotifyOK(body)
			if err != nil {
				return
			}
			if _, err := decodeNotifyOK(encodeNotifyOK(m)); err != nil {
				t.Fatalf("notifyOK round trip: %v", err)
			}
		case fzProbeReq:
			m, err := decodeProbeReq(body)
			if err != nil {
				return
			}
			back, err := decodeProbeReq(encodeProbeReq(m))
			if err != nil || back.From != m.From {
				t.Fatalf("probeReq round trip: %+v %v", back, err)
			}
		case fzProbeOK:
			m, err := decodeProbeOK(body)
			if err != nil {
				return
			}
			back, err := decodeProbeOK(encodeProbeOK(m))
			if err != nil || back.Self != m.Self || len(back.Succs) != len(m.Succs) {
				t.Fatalf("probeOK round trip: %+v %v", back, err)
			}
		}
	})
}

// TestWriteChordCorpusSeeds regenerates the committed corpus files from
// chordSeeds. Run with CHORD_WRITE_SEEDS=1 after changing a codec.
func TestWriteChordCorpusSeeds(t *testing.T) {
	if os.Getenv("CHORD_WRITE_SEEDS") == "" {
		t.Skip("seed writer; set CHORD_WRITE_SEEDS=1 to regenerate testdata")
	}
	dir := filepath.Join("testdata", "fuzz", "FuzzChordCodecs")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	for name, seed := range chordSeeds() {
		content := fmt.Sprintf("go test fuzz v1\n[]byte(%s)\n", strconv.Quote(string(seed)))
		if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}
