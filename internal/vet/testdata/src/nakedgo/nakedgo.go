// Package nakedgo is a bpvet golden-test fixture.
package nakedgo

import "fmt"

func badLiteral() {
	go func() {}() // want `goroutine body has no deferred recover`
}

func goodLiteral() {
	go func() {
		defer func() {
			if r := recover(); r != nil {
				return
			}
		}()
	}()
}

func worker() {}

func badNamed() {
	go worker() // want `goroutine worker has no deferred recover`
}

func contain() { _ = recover() }

func safeWorker() {
	defer contain()
}

func goodNamed() {
	go safeWorker()
}

type box struct{}

func (box) loop() {
	defer func() { _ = recover() }()
}

func goodMethod(b box) {
	go b.loop()
}

func badUnresolvable() {
	go fmt.Println("hi") // want `cannot verify panic containment of fmt\.Println`
}

// A recover hidden inside a nested literal does not protect the
// goroutine's own frame.
func badNestedRecover() {
	go func() { // want `goroutine body has no deferred recover`
		f := func() { _ = recover() }
		f()
	}()
}
