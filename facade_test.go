package bestpeer_test

// End-to-end exercise of the public façade: everything a downstream user
// touches, with no imports from internal/.

import (
	"fmt"
	"path/filepath"
	"testing"
	"time"

	bestpeer "bestpeer"
)

func TestPublicAPIEndToEnd(t *testing.T) {
	dir := t.TempDir()
	nw := bestpeer.NewInProcNetwork()

	// A LIGLO server for identity.
	srv, err := bestpeer.NewLigloServer(nw, "liglo", bestpeer.LigloServerConfig{InitialPeers: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// Three nodes sharing a few objects each.
	var nodes []*bestpeer.Node
	for i := 0; i < 3; i++ {
		store, err := bestpeer.OpenStore(filepath.Join(dir, fmt.Sprintf("n%d.storm", i)),
			bestpeer.StoreOptions{PersistentCatalog: true})
		if err != nil {
			t.Fatal(err)
		}
		defer store.Close()
		store.Put(&bestpeer.Object{
			Name:     fmt.Sprintf("track-%d.mp3", i),
			Keywords: []string{"music"},
			Data:     []byte(fmt.Sprintf("audio-%d", i)),
		})
		node, err := bestpeer.NewNode(bestpeer.Config{
			Network:    nw,
			ListenAddr: fmt.Sprintf("node-%d", i),
			Store:      store,
			MaxPeers:   4,
			Strategy:   bestpeer.StrategyByName("maxcount"),
		})
		if err != nil {
			t.Fatal(err)
		}
		defer node.Close()
		if err := node.Join([]string{srv.Addr()}); err != nil {
			t.Fatal(err)
		}
		nodes = append(nodes, node)
	}
	if nodes[2].ID().IsZero() {
		t.Fatal("join did not assign a BPID")
	}

	// The last joiner knows the earlier ones as initial peers.
	if len(nodes[2].Peers()) != 2 {
		t.Fatalf("initial peers = %v", nodes[2].Peers())
	}

	// Keyword search across the network.
	res, err := nodes[2].Query(&bestpeer.KeywordAgent{Query: "music"}, bestpeer.QueryOptions{
		Timeout: 2 * time.Second, WaitAnswers: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Answers) != 3 {
		t.Fatalf("answers = %d, want 3", len(res.Answers))
	}

	// Shipped-filter computation.
	pred, err := bestpeer.CompileFilter("keyword=music & size>0")
	if err != nil {
		t.Fatal(err)
	}
	_ = pred
	fres, err := nodes[2].Query(&bestpeer.FilterAgent{Expr: "name~track", IncludeData: false},
		bestpeer.QueryOptions{Timeout: 2 * time.Second, WaitAnswers: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(fres.Answers) != 3 {
		t.Fatalf("filter answers = %d", len(fres.Answers))
	}

	// Top-K across the network.
	kres, err := nodes[2].Query(&bestpeer.TopKAgent{Query: "music", K: 1},
		bestpeer.QueryOptions{Timeout: 2 * time.Second, WaitAnswers: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(kres.Answers) != 3 {
		t.Fatalf("topk answers = %d", len(kres.Answers))
	}

	// LIGLO lookup of a peer's identity.
	cli := bestpeer.NewLigloClient(nw)
	addr, online, err := cli.Lookup(nodes[0].ID())
	if err != nil || !online || addr != nodes[0].Addr() {
		t.Fatalf("lookup = %s %v %v", addr, online, err)
	}
}

func TestPublicAPIIndexedStore(t *testing.T) {
	store, err := bestpeer.OpenStore(filepath.Join(t.TempDir(), "ix.storm"), bestpeer.StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	ix, err := bestpeer.NewIndexedStore(store)
	if err != nil {
		t.Fatal(err)
	}
	ix.Put(&bestpeer.Object{Name: "a", Keywords: []string{"k"}, Data: []byte("1")})
	ix.Put(&bestpeer.Object{Name: "b", Keywords: []string{"k"}, Data: []byte("2")})
	hits, err := ix.Match("k")
	if err != nil || len(hits) != 2 {
		t.Fatalf("indexed match = %d, %v", len(hits), err)
	}
}

func TestPublicAPIActiveObjects(t *testing.T) {
	dir := t.TempDir()
	nw := bestpeer.NewInProcNetwork()

	owner, err := bestpeer.OpenStore(filepath.Join(dir, "o.storm"), bestpeer.StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer owner.Close()
	owner.Put(&bestpeer.Object{
		Name:        "report",
		Keywords:    []string{"finance"},
		Kind:        bestpeer.ActiveObject,
		ActiveClass: "level-filter",
		Data:        []byte("public\n!5 secret"),
	})
	ownerNode, err := bestpeer.NewNode(bestpeer.Config{
		Network: nw, ListenAddr: "owner", Store: owner,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer ownerNode.Close()

	reqStore, err := bestpeer.OpenStore(filepath.Join(dir, "r.storm"), bestpeer.StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer reqStore.Close()
	requester, err := bestpeer.NewNode(bestpeer.Config{
		Network: nw, ListenAddr: "req", Store: reqStore, AccessLevel: 0,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer requester.Close()
	requester.SetPeers([]bestpeer.Peer{{Addr: ownerNode.Addr()}})

	res, err := requester.Query(&bestpeer.KeywordAgent{Query: "finance"}, bestpeer.QueryOptions{
		Timeout: 2 * time.Second, WaitAnswers: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Answers) != 1 || string(res.Answers[0].Result.Data) != "public" {
		t.Fatalf("active object leaked: %+v", res.Answers)
	}
}
