package liglo

import (
	"errors"
	"fmt"

	"bestpeer/internal/transport"
	"bestpeer/internal/wire"
)

// Client talks to LIGLO servers. Connections are per-call: registration
// and rejoin happen once per session and lookups are rare, so caching
// buys nothing and a stateless client is simpler to reason about.
type Client struct {
	network transport.Network
}

// NewClient returns a client that dials over the given network.
func NewClient(network transport.Network) *Client {
	return &Client{network: network}
}

// call performs one request/response exchange with a server.
func (c *Client) call(server string, req *wire.Envelope) (*wire.Envelope, error) {
	conn, err := c.network.Dial(server)
	if err != nil {
		return nil, fmt.Errorf("liglo: dial %s: %w", server, err)
	}
	defer conn.Close()
	wc := wire.NewConn(conn)
	if err := wc.Send(req); err != nil {
		return nil, fmt.Errorf("liglo: send to %s: %w", server, err)
	}
	resp, err := wc.Recv()
	if err != nil {
		return nil, fmt.Errorf("liglo: recv from %s: %w", server, err)
	}
	return resp, nil
}

// Register asks the server for a BPID, reporting myAddr as the current
// address. It returns the issued identity and the initial direct-peer
// list. A capacity-limited server returns ErrFull — seek another server.
func (c *Client) Register(server, myAddr string) (wire.BPID, []PeerInfo, error) {
	req := &wire.Envelope{
		Kind: wire.KindLigloRegister,
		ID:   wire.NewMsgID(),
		TTL:  1,
		Body: encodeRegisterReq(&registerReq{Addr: myAddr}),
	}
	resp, err := c.call(server, req)
	if err != nil {
		return wire.BPID{}, nil, err
	}
	r, err := decodeRegisterResp(resp.Body)
	if err != nil {
		return wire.BPID{}, nil, err
	}
	if r.Err != "" {
		if r.Err == ErrFull.Error() {
			return wire.BPID{}, nil, ErrFull
		}
		return wire.BPID{}, nil, errors.New(r.Err)
	}
	return r.ID, r.Peers, nil
}

// RegisterAny tries each server in order until one accepts — the paper's
// "the node has to seek for another LIGLO" behaviour when a server is at
// capacity or down.
func (c *Client) RegisterAny(servers []string, myAddr string) (wire.BPID, []PeerInfo, error) {
	var lastErr error
	for _, s := range servers {
		id, peers, err := c.Register(s, myAddr)
		if err == nil {
			return id, peers, nil
		}
		lastErr = err
	}
	if lastErr == nil {
		lastErr = errors.New("liglo: no servers given")
	}
	return wire.BPID{}, nil, lastErr
}

// Rejoin reports the node's current address to its home server after a
// reconnect.
func (c *Client) Rejoin(id wire.BPID, myAddr string) error {
	req := &wire.Envelope{
		Kind: wire.KindLigloRejoin,
		ID:   wire.NewMsgID(),
		TTL:  1,
		Body: encodeRejoinReq(&rejoinReq{ID: id, Addr: myAddr}),
	}
	resp, err := c.call(id.LIGLO, req)
	if err != nil {
		return err
	}
	r, err := decodeRejoinResp(resp.Body)
	if err != nil {
		return err
	}
	if r.Err != "" {
		switch r.Err {
		case ErrUnknown.Error():
			return ErrUnknown
		case ErrWrongHome.Error():
			return ErrWrongHome
		}
		return errors.New(r.Err)
	}
	return nil
}

// Lookup resolves a peer's current address and online status by asking
// the peer's home server (extracted from the BPID).
func (c *Client) Lookup(id wire.BPID) (addr string, online bool, err error) {
	req := &wire.Envelope{
		Kind: wire.KindLigloLookup,
		ID:   wire.NewMsgID(),
		TTL:  1,
		Body: encodeLookupReq(&lookupReq{ID: id}),
	}
	resp, err := c.call(id.LIGLO, req)
	if err != nil {
		return "", false, err
	}
	r, err := decodeLookupResp(resp.Body)
	if err != nil {
		return "", false, err
	}
	if r.Err != "" {
		if r.Err == ErrWrongHome.Error() {
			return "", false, ErrWrongHome
		}
		return "", false, errors.New(r.Err)
	}
	if !r.Found {
		return "", false, fmt.Errorf("%w: %v", ErrUnknown, id)
	}
	return r.Addr, r.Online, nil
}

// Peers asks a server for up to max online members (excluding self, when
// self was issued by that server). Use it to replenish a depleted peer
// set without re-registering.
func (c *Client) Peers(server string, self wire.BPID, max int) ([]PeerInfo, error) {
	req := &wire.Envelope{
		Kind: wire.KindLigloPeers,
		ID:   wire.NewMsgID(),
		TTL:  1,
		Body: encodePeersReq(&peersReq{Self: self, Max: max}),
	}
	resp, err := c.call(server, req)
	if err != nil {
		return nil, err
	}
	r, err := decodePeersResp(resp.Body)
	if err != nil {
		return nil, err
	}
	if r.Err != "" {
		return nil, errors.New(r.Err)
	}
	return r.Peers, nil
}
