package netsim

import (
	"testing"
	"time"
)

func TestMeshDeliversWithLatency(t *testing.T) {
	s := NewSim()
	m := NewMesh(s, 4, 10*time.Millisecond)
	type rec struct {
		to  int32
		msg MeshMsg
		at  time.Duration
	}
	var got []rec
	m.SetHandler(func(to int32, msg MeshMsg) {
		got = append(got, rec{to, msg, s.Now()})
	})
	m.Send(1, MeshMsg{From: 0, Kind: 7, A: 42})
	m.Send(2, MeshMsg{From: 0, Kind: 7, A: 43})
	s.Run()
	if len(got) != 2 {
		t.Fatalf("delivered %d messages, want 2", len(got))
	}
	if got[0].at != 10*time.Millisecond || got[1].at != 10*time.Millisecond {
		t.Fatalf("delivery times %v, %v; want 10ms", got[0].at, got[1].at)
	}
	if got[0].to != 1 || got[0].msg.A != 42 || got[1].to != 2 || got[1].msg.A != 43 {
		t.Fatalf("payloads scrambled: %+v", got)
	}
	st := m.Stats()
	if st.Sent != 2 || st.Delivered != 2 || st.LostDead != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestMeshDeadHostLosesInFlight(t *testing.T) {
	s := NewSim()
	m := NewMesh(s, 2, 5*time.Millisecond)
	delivered := 0
	m.SetHandler(func(to int32, msg MeshMsg) { delivered++ })
	m.Send(1, MeshMsg{From: 0})
	// The host crashes while the message is in flight: the message is
	// lost, exactly how a crash looks from the sender's side.
	s.After(time.Millisecond, func() { m.SetAlive(1, false) })
	s.Run()
	if delivered != 0 {
		t.Fatalf("delivered %d to a dead host", delivered)
	}
	if st := m.Stats(); st.LostDead != 1 {
		t.Fatalf("stats = %+v, want 1 lost-dead", st)
	}
	if m.AliveCount() != 1 {
		t.Fatalf("alive = %d, want 1", m.AliveCount())
	}
}

func TestMeshRestartReceivesAgain(t *testing.T) {
	s := NewSim()
	m := NewMesh(s, 2, time.Millisecond)
	delivered := 0
	m.SetHandler(func(to int32, msg MeshMsg) { delivered++ })
	m.SetAlive(1, false)
	m.Send(1, MeshMsg{}) // lost
	s.After(10*time.Millisecond, func() {
		m.SetAlive(1, true)
		m.Send(1, MeshMsg{}) // delivered
	})
	s.Run()
	if delivered != 1 {
		t.Fatalf("delivered = %d, want 1", delivered)
	}
}

func TestMeshHandlerSendsChain(t *testing.T) {
	// A handler that relays (the flood pattern) must keep the pump armed
	// across batches without double-delivering.
	s := NewSim()
	m := NewMesh(s, 3, time.Millisecond)
	var hops []int32
	m.SetHandler(func(to int32, msg MeshMsg) {
		hops = append(hops, to)
		if to < 2 {
			m.Send(to+1, MeshMsg{From: to})
		}
	})
	m.Send(1, MeshMsg{From: 0})
	end := s.Run()
	if len(hops) != 2 || hops[0] != 1 || hops[1] != 2 {
		t.Fatalf("relay path = %v", hops)
	}
	if end != 2*time.Millisecond {
		t.Fatalf("end = %v, want 2ms", end)
	}
}

func TestMeshRingCompaction(t *testing.T) {
	// Many sequential batches must not grow the ring without bound.
	s := NewSim()
	m := NewMesh(s, 2, time.Millisecond)
	count := 0
	m.SetHandler(func(to int32, msg MeshMsg) {
		count++
		if count < 5000 {
			m.Send(to, MeshMsg{})
		}
	})
	m.Send(1, MeshMsg{})
	s.Run()
	if count != 5000 {
		t.Fatalf("count = %d", count)
	}
	if len(m.ring) != 0 || m.head != 0 {
		t.Fatalf("ring not drained: len=%d head=%d", len(m.ring), m.head)
	}
}

func TestSimSeededRandDeterministic(t *testing.T) {
	draw := func(seed int64) []int64 {
		s := NewSimSeeded(seed)
		out := make([]int64, 8)
		for i := range out {
			out[i] = s.Rand().Int63n(1000)
		}
		return out
	}
	a, b := draw(42), draw(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("seeded streams diverge at %d: %v vs %v", i, a, b)
		}
	}
	c := draw(43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical streams")
	}
}

func TestSimShardedQueueTotalOrder(t *testing.T) {
	// Events landing on different shards must still execute in exact
	// (time, sequence) order — the sharding is an implementation detail.
	s := NewSim()
	var got []int
	// Interleave times so shard heads constantly compete.
	for i := 0; i < 1000; i++ {
		i := i
		at := time.Duration((i*7)%13) * time.Millisecond
		s.At(at, func() { got = append(got, i) })
	}
	s.Run()
	if len(got) != 1000 {
		t.Fatalf("executed %d events", len(got))
	}
	// Verify: sort key is (time, insertion order); recompute expected.
	last := -1
	lastAt := time.Duration(-1)
	for _, i := range got {
		at := time.Duration((i*7)%13) * time.Millisecond
		if at < lastAt || (at == lastAt && i < last) {
			t.Fatalf("order violated at event %d (at=%v, after at=%v seq=%d)", i, at, lastAt, last)
		}
		last, lastAt = i, at
	}
}

func BenchmarkSimSchedule(b *testing.B) {
	s := NewSim()
	fn := func() {}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.At(time.Duration(i), fn)
		if s.Pending() > 1<<16 {
			s.Run()
		}
	}
	s.Run()
}

func BenchmarkMeshSend(b *testing.B) {
	s := NewSim()
	m := NewMesh(s, 1024, time.Millisecond)
	m.SetHandler(func(to int32, msg MeshMsg) {})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m.Send(int32(i%1024), MeshMsg{From: int32(i % 7), Kind: 1})
		if m.stats.Sent%(1<<16) == 0 {
			s.Run()
		}
	}
	s.Run()
}
