package bestpeer

// One testing.B benchmark per table/figure of the paper's evaluation,
// plus micro-benchmarks of the load-bearing components. Figure benches
// run the deterministic simulator; each iteration regenerates the whole
// figure. `go test -bench=. -benchmem` therefore reproduces every
// experiment; `go run ./cmd/bpbench` prints the same data as tables.

import (
	"fmt"
	"path/filepath"
	"testing"

	"bestpeer/internal/agent"
	"bestpeer/internal/bench"
	"bestpeer/internal/reconfig"
	"bestpeer/internal/storm"
	"bestpeer/internal/topology"
	"bestpeer/internal/wire"
	"bestpeer/internal/workload"
)

// reportCompletion attaches the headline series values to the bench
// output, so -bench runs show the reproduced numbers.
func reportCompletion(b *testing.B, fig *bench.Figure) {
	b.Helper()
	for _, s := range fig.Series {
		if len(s.Points) > 0 {
			b.ReportMetric(s.Last().Y, s.Name+"_ms")
		}
	}
}

func BenchmarkFig5aStar(b *testing.B) {
	cost := bench.DefaultCost()
	var fig *bench.Figure
	for i := 0; i < b.N; i++ {
		fig = bench.Fig5a(cost, 1)
	}
	reportCompletion(b, fig)
}

func BenchmarkFig5bTree(b *testing.B) {
	cost := bench.DefaultCost()
	var fig *bench.Figure
	for i := 0; i < b.N; i++ {
		fig = bench.Fig5b(cost, 1)
	}
	reportCompletion(b, fig)
}

func BenchmarkFig5cLine(b *testing.B) {
	cost := bench.DefaultCost()
	var fig *bench.Figure
	for i := 0; i < b.N; i++ {
		fig = bench.Fig5c(cost, 1)
	}
	reportCompletion(b, fig)
}

func BenchmarkFig6ResponseRate(b *testing.B) {
	cost := bench.DefaultCost()
	var fig *bench.Figure
	for i := 0; i < b.N; i++ {
		fig = bench.Fig6(cost, 1)
	}
	// Report the time by which each scheme had heard from all nodes.
	for _, s := range fig.Series {
		b.ReportMetric(s.Last().X, s.Name+"_all31_ms")
	}
}

func BenchmarkFig7Answers(b *testing.B) {
	cost := bench.DefaultCost()
	var fig *bench.Figure
	for i := 0; i < b.N; i++ {
		fig = bench.Fig7(cost, 1)
	}
	for _, s := range fig.Series {
		b.ReportMetric(s.Last().X, s.Name+"_lastanswer_ms")
	}
}

func BenchmarkFig8aRuns(b *testing.B) {
	cost := bench.DefaultCost()
	var fig *bench.Figure
	for i := 0; i < b.N; i++ {
		fig = bench.Fig8a(cost, 1)
	}
	bp := fig.SeriesByName("BP")
	gnu := fig.SeriesByName("Gnutella")
	b.ReportMetric(bp.Points[0].Y, "BP_run1_ms")
	b.ReportMetric(bp.Last().Y, "BP_run4_ms")
	b.ReportMetric(gnu.Last().Y, "GNU_ms")
}

func BenchmarkFig8bPeers(b *testing.B) {
	cost := bench.DefaultCost()
	var fig *bench.Figure
	for i := 0; i < b.N; i++ {
		fig = bench.Fig8b(cost, 1)
	}
	reportCompletion(b, fig)
}

func BenchmarkAblationStrategies(b *testing.B) {
	cost := bench.DefaultCost()
	var fig *bench.Figure
	for i := 0; i < b.N; i++ {
		fig = bench.AblationStrategies(cost, 1)
	}
	reportCompletion(b, fig)
}

func BenchmarkAblationCompression(b *testing.B) {
	cost := bench.DefaultCost()
	for i := 0; i < b.N; i++ {
		bench.AblationCompression(cost, 1)
	}
}

func BenchmarkAblationColdClass(b *testing.B) {
	cost := bench.DefaultCost()
	for i := 0; i < b.N; i++ {
		bench.AblationColdClass(cost, 1)
	}
}

func BenchmarkAblationResultMode(b *testing.B) {
	cost := bench.DefaultCost()
	for i := 0; i < b.N; i++ {
		bench.AblationResultMode(cost, 1)
	}
}

// BenchmarkBestPeerRound measures one simulated BestPeer query round on a
// 32-node tree (the core protocol hot path).
func BenchmarkBestPeerRound(b *testing.B) {
	spec := workload.Default(1)
	p := bench.Params{
		Cost: bench.DefaultCost(), Spec: spec, Query: spec.Keyword(7), IncludeData: true,
	}
	tp := topology.Tree(32, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bench.RunBestPeer(tp, p, 1, reconfig.Static{})
	}
}

// Micro-benchmarks of the substrates.

func BenchmarkWireEncodeDecode(b *testing.B) {
	env := &wire.Envelope{
		Kind: wire.KindAgent, ID: wire.NewMsgID(), TTL: 7,
		From: "a:1", To: "b:2", Body: make([]byte, 2048),
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		frame, err := wire.EncodeEnvelope(env)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := wire.DecodeEnvelope(frame); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkStormPut(b *testing.B) {
	store, err := storm.Open(filepath.Join(b.TempDir(), "b.storm"), storm.Options{BufferFrames: 64})
	if err != nil {
		b.Fatal(err)
	}
	defer store.Close()
	data := make([]byte, 1024)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		obj := &storm.Object{Name: fmt.Sprintf("o%09d", i), Keywords: []string{"k"}, Data: data}
		if _, err := store.Put(obj); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkStormMatch1000(b *testing.B) {
	// The paper's per-node operation: compare a keyword against 1000
	// stored 1 KB objects.
	store, err := storm.Open(filepath.Join(b.TempDir(), "m.storm"), storm.Options{BufferFrames: 512})
	if err != nil {
		b.Fatal(err)
	}
	defer store.Close()
	spec := workload.Default(1)
	if err := spec.Populate(0, store); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := store.Match(spec.Keyword(i % 100)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStormPolicies compares buffer replacement strategies under a
// looping scan that exceeds the pool (the StorM ablation).
func BenchmarkStormPolicies(b *testing.B) {
	for _, policy := range []string{"lru", "mru", "fifo", "clock", "priority"} {
		b.Run(policy, func(b *testing.B) {
			store, err := storm.Open(filepath.Join(b.TempDir(), "p.storm"),
				storm.Options{BufferFrames: 16, Policy: policy})
			if err != nil {
				b.Fatal(err)
			}
			defer store.Close()
			data := make([]byte, 1024)
			for i := 0; i < 100; i++ {
				store.Put(&storm.Object{Name: fmt.Sprintf("o%03d", i), Data: data})
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := store.Scan(func(*storm.Object) bool { return true }); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(store.Pool().HitRate()*100, "hit%")
		})
	}
}

func BenchmarkFilterCompile(b *testing.B) {
	const expr = "keyword=finance & (size>512 | name~report) & !data~draft"
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := agent.CompileFilter(expr); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAgentPacketRoundTrip(b *testing.B) {
	ag := &agent.KeywordAgent{Query: "some keyword"}
	state, _ := ag.State()
	p := &agent.Packet{Class: ag.Class(), State: state, Base: "base:1", Mode: 1}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		body := agent.EncodePacket(p)
		if _, err := agent.DecodePacket(body); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBTreePut measures catalog insert throughput.
func BenchmarkBTreePut(b *testing.B) {
	store, err := storm.Open(filepath.Join(b.TempDir(), "bt.storm"),
		storm.Options{BufferFrames: 256, PersistentCatalog: true})
	if err != nil {
		b.Fatal(err)
	}
	defer store.Close()
	data := make([]byte, 256)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := store.Put(&storm.Object{Name: fmt.Sprintf("k%09d", i), Data: data}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWALAppend measures logged-put throughput (no fsync).
func BenchmarkWALAppend(b *testing.B) {
	dir := b.TempDir()
	store, err := storm.Open(filepath.Join(dir, "w.storm"),
		storm.Options{BufferFrames: 256, WALPath: filepath.Join(dir, "w.wal")})
	if err != nil {
		b.Fatal(err)
	}
	defer store.Close()
	data := make([]byte, 512)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := store.Put(&storm.Object{Name: fmt.Sprintf("w%09d", i), Data: data}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkIndexedLookup compares a persistent-index keyword lookup with
// a full scan on a 1000-object store.
func BenchmarkIndexedLookup(b *testing.B) {
	store, err := storm.Open(filepath.Join(b.TempDir(), "ix.storm"),
		storm.Options{BufferFrames: 512, PersistentIndex: true})
	if err != nil {
		b.Fatal(err)
	}
	defer store.Close()
	spec := workload.Default(1)
	if err := spec.Populate(0, store); err != nil {
		b.Fatal(err)
	}
	b.Run("index", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := store.LookupKeyword(spec.Keyword(i % 100)); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("scan", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := store.Match(spec.Keyword(i % 100)); err != nil {
				b.Fatal(err)
			}
		}
	})
}
