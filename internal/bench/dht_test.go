package bench

import (
	"encoding/json"
	"os"
	"testing"
)

// testDHTParams scales the churn leg down to the tier-1 budget; the
// static leg already runs at the committed 64-node scale.
func testDHTParams() DHTParams {
	p := DefaultDHTParams()
	p.Churn = testChurnParams()
	return p
}

// assertDHTClaims checks the T4 acceptance claims on a result — shared
// between the fresh-run test and the committed-JSON test so the figure
// on disk is held to exactly what the experiment promises.
func assertDHTClaims(t *testing.T, res *DHTResult) {
	t.Helper()
	chdE := res.StaticRun("chd", "exact")
	floodE := res.StaticRun("flood", "exact")
	chdK := res.StaticRun("chd", "keyword")
	floodK := res.StaticRun("flood", "keyword")
	bprK := res.StaticRun("bpr", "keyword")
	if chdE == nil || floodE == nil || chdK == nil || floodK == nil || bprK == nil {
		t.Fatalf("missing static cells in %+v", res.Static)
	}

	// Exact-key: chord finds everything in ≤ ceil(log2 N)+1 mean hops
	// and spends fewer messages than the flood at equal recall.
	if chdE.Recall != 1 {
		t.Errorf("chd exact recall %.3f, want 1", chdE.Recall)
	}
	if floodE.Recall != 1 {
		t.Errorf("flood exact recall %.3f, want 1 (equal-recall baseline)", floodE.Recall)
	}
	if bound := float64(res.HopBound); chdE.MeanHops > bound {
		t.Errorf("chd exact mean hops %.2f > bound %.0f", chdE.MeanHops, bound)
	}
	if chdE.Msgs >= floodE.Msgs {
		t.Errorf("chd exact sent %d msgs, flood %d; the DHT saved nothing", chdE.Msgs, floodE.Msgs)
	}

	// Keyword: the partial index caps chord's recall below BPR's, which
	// reaches every holder — keyword workloads still favor BPR.
	if floodK.Recall != 1 {
		t.Errorf("flood keyword recall %.3f, want 1", floodK.Recall)
	}
	if bprK.Recall <= chdK.Recall {
		t.Errorf("bpr keyword recall %.3f <= chd %.3f; BPR should win keyword search", bprK.Recall, chdK.Recall)
	}

	// Churn: all three schemes ran the shared trace and produced
	// samples; the flood reference stayed healthy.
	for _, scheme := range []string{"chd", "bpr", "flood"} {
		run := res.ChurnRun(scheme)
		if run == nil || len(run.Samples) == 0 {
			t.Fatalf("churn run %q missing or empty", scheme)
		}
	}
	if flood := res.ChurnRun("flood"); flood.MeanRecall < 0.95 {
		t.Errorf("flood churn mean recall %.3f; the reference itself is broken", flood.MeanRecall)
	}
	if chd := res.ChurnRun("chd"); chd.MeanRecall < 0.5 {
		t.Errorf("chd churn mean recall %.3f; the ring is not routing", chd.MeanRecall)
	}
}

func TestDHT(t *testing.T) {
	res := DHT(testDHTParams(), 1)
	for _, sr := range res.Static {
		t.Logf("static %-6s %-8s recall=%.3f hops=%.2f msgs=%d bytes=%d",
			sr.Scheme, sr.Workload, sr.Recall, sr.MeanHops, sr.Msgs, sr.Bytes)
	}
	for _, sr := range res.Churn {
		t.Logf("churn %-6s mean=%.3f final=%.3f postmin=%.3f msgs=%d",
			sr.Scheme, sr.MeanRecall, sr.FinalRecall, sr.PostBurstMinRecall, sr.Msgs)
	}
	assertDHTClaims(t, res)

	// The chord maintenance traffic undercuts the flood's query traffic
	// on the same trace.
	if chd, flood := res.ChurnRun("chd"), res.ChurnRun("flood"); chd.Msgs >= flood.Msgs {
		t.Errorf("chd churn sent %d msgs, flood %d", chd.Msgs, flood.Msgs)
	}
}

// TestBenchPR10JSON holds the committed figure file to the same claims
// as a fresh run: the acceptance numbers are asserted where they are
// published.
func TestBenchPR10JSON(t *testing.T) {
	b, err := os.ReadFile("../../BENCH_PR10.json")
	if err != nil {
		t.Skipf("committed figure not present: %v", err)
	}
	var report Report
	if err := json.Unmarshal(b, &report); err != nil {
		t.Fatalf("BENCH_PR10.json: %v", err)
	}
	if report.DHT == nil {
		t.Fatal("BENCH_PR10.json has no dht section")
	}
	if report.DHT.Nodes != DefaultDHTParams().Nodes {
		t.Errorf("committed run used %d nodes, default is %d", report.DHT.Nodes, DefaultDHTParams().Nodes)
	}
	if report.DHT.ChurnNodes != DefaultChurnParams().Nodes {
		t.Errorf("committed churn used %d nodes, default is %d", report.DHT.ChurnNodes, DefaultChurnParams().Nodes)
	}
	assertDHTClaims(t, report.DHT)
}
