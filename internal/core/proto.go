package core

import (
	"errors"
	"fmt"

	"bestpeer/internal/wire"
)

// ErrBadMessage reports a malformed core-protocol payload.
var ErrBadMessage = errors.New("core: malformed message")

// classWant asks the previous hop for an agent class the receiver lacks.
type classWant struct {
	Class string
}

// classShip carries a class payload to a node that requested it.
type classShip struct {
	Class string
	Code  []byte
}

// fetchReq is the mode-2 follow-up: after receiving hints, the base node
// asks an answering peer for the actual content of named objects.
type fetchReq struct {
	// Names are the objects to retrieve.
	Names []string
	// Base is where to send the data.
	Base string
	// BaseID identifies the requester for access control.
	BaseID wire.BPID
	// AccessLevel is the requester's clearance.
	AccessLevel int
}

func encodeClassWant(w *classWant) []byte {
	var e wire.Encoder
	e.String(w.Class)
	return e.Bytes()
}

func decodeClassWant(b []byte) (*classWant, error) {
	d := wire.NewDecoder(b)
	w := &classWant{Class: d.String()}
	if err := d.Finish(); err != nil || w.Class == "" {
		return nil, fmt.Errorf("%w: class-want", ErrBadMessage)
	}
	return w, nil
}

func encodeClassShip(s *classShip) []byte {
	var e wire.Encoder
	e.String(s.Class)
	e.Bytes2(s.Code)
	return e.Bytes()
}

func decodeClassShip(b []byte) (*classShip, error) {
	d := wire.NewDecoder(b)
	s := &classShip{Class: d.String(), Code: d.Bytes2()}
	if err := d.Finish(); err != nil || s.Class == "" {
		return nil, fmt.Errorf("%w: class-ship", ErrBadMessage)
	}
	return s, nil
}

func encodeFetchReq(f *fetchReq) []byte {
	var e wire.Encoder
	e.Uvarint(uint64(len(f.Names)))
	for _, n := range f.Names {
		e.String(n)
	}
	e.String(f.Base)
	e.BPID(f.BaseID)
	e.Varint(int64(f.AccessLevel))
	return e.Bytes()
}

func decodeFetchReq(b []byte) (*fetchReq, error) {
	d := wire.NewDecoder(b)
	n := d.Uvarint()
	if n > uint64(wire.MaxFrameSize) {
		return nil, fmt.Errorf("%w: fetch", ErrBadMessage)
	}
	f := &fetchReq{}
	for i := uint64(0); i < n; i++ {
		f.Names = append(f.Names, d.String())
	}
	f.Base = d.String()
	f.BaseID = d.BPID()
	f.AccessLevel = int(d.Varint())
	if err := d.Finish(); err != nil {
		return nil, fmt.Errorf("%w: fetch: %v", ErrBadMessage, err)
	}
	return f, nil
}
