package transport

import (
	"errors"
	"net"
	"sync"
	"testing"
	"time"

	"bestpeer/internal/wire"
)

func env(kind wire.Kind, body string) *wire.Envelope {
	return &wire.Envelope{Kind: kind, ID: wire.NewMsgID(), TTL: 4, Body: []byte(body)}
}

// collector accumulates received envelopes.
type collector struct {
	mu   sync.Mutex
	got  []*wire.Envelope
	cond *sync.Cond
}

func newCollector() *collector {
	c := &collector{}
	c.cond = sync.NewCond(&c.mu)
	return c
}

func (c *collector) handle(e *wire.Envelope) {
	c.mu.Lock()
	c.got = append(c.got, e)
	c.cond.Broadcast()
	c.mu.Unlock()
}

func (c *collector) waitFor(t *testing.T, n int) []*wire.Envelope {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	c.mu.Lock()
	defer c.mu.Unlock()
	for len(c.got) < n {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %d envelopes, have %d", n, len(c.got))
		}
		done := make(chan struct{})
		go func() {
			time.Sleep(10 * time.Millisecond)
			c.cond.Broadcast()
			close(done)
		}()
		c.cond.Wait()
		<-done
	}
	return append([]*wire.Envelope(nil), c.got...)
}

func testNetworks(t *testing.T) map[string]Network {
	return map[string]Network{
		"inproc": NewInProc(),
		"tcp":    TCP{},
	}
}

func TestMessengerDelivery(t *testing.T) {
	for name, nw := range testNetworks(t) {
		t.Run(name, func(t *testing.T) {
			c := newCollector()
			recv, err := NewMessenger(nw, "", c.handle)
			if err != nil {
				t.Fatal(err)
			}
			defer recv.Close()
			send, err := NewMessenger(nw, "", nil)
			if err != nil {
				t.Fatal(err)
			}
			defer send.Close()

			want := env(wire.KindAgent, "payload")
			if err := send.Send(recv.Addr(), want); err != nil {
				t.Fatal(err)
			}
			got := c.waitFor(t, 1)
			if got[0].ID != want.ID || string(got[0].Body) != "payload" {
				t.Fatalf("delivered %+v", got[0])
			}
		})
	}
}

func TestMessengerManyMessagesOrdered(t *testing.T) {
	for name, nw := range testNetworks(t) {
		t.Run(name, func(t *testing.T) {
			c := newCollector()
			recv, err := NewMessenger(nw, "", c.handle)
			if err != nil {
				t.Fatal(err)
			}
			defer recv.Close()
			send, err := NewMessenger(nw, "", nil)
			if err != nil {
				t.Fatal(err)
			}
			defer send.Close()

			const n = 100
			for i := 0; i < n; i++ {
				e := env(wire.KindResult, "m")
				e.Hops = uint8(i)
				if err := send.Send(recv.Addr(), e); err != nil {
					t.Fatal(err)
				}
			}
			got := c.waitFor(t, n)
			// Same destination queue: ordering must hold.
			for i := 0; i < n; i++ {
				if got[i].Hops != uint8(i) {
					t.Fatalf("message %d has hops %d (reordered)", i, got[i].Hops)
				}
			}
			// The sent counter trails the receiver's handler by one
			// instant; poll rather than assert the instantaneous value.
			deadline := time.Now().Add(2 * time.Second)
			for send.Sent() != n && time.Now().Before(deadline) {
				time.Sleep(time.Millisecond)
			}
			if got := send.Sent(); got != n {
				t.Fatalf("Sent = %d, want %d", got, n)
			}
		})
	}
}

func TestMessengerBidirectional(t *testing.T) {
	nw := NewInProc()
	ca, cb := newCollector(), newCollector()
	a, err := NewMessenger(nw, "node-a", ca.handle)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := NewMessenger(nw, "node-b", cb.handle)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	if err := a.Send("node-b", env(wire.KindAgent, "ping")); err != nil {
		t.Fatal(err)
	}
	if err := b.Send("node-a", env(wire.KindResult, "pong")); err != nil {
		t.Fatal(err)
	}
	if got := cb.waitFor(t, 1); string(got[0].Body) != "ping" {
		t.Fatalf("b got %q", got[0].Body)
	}
	if got := ca.waitFor(t, 1); string(got[0].Body) != "pong" {
		t.Fatalf("a got %q", got[0].Body)
	}
}

func TestMessengerDialFailure(t *testing.T) {
	// Sends to an unreachable address are accepted (delivery is async)
	// but fail in the worker; after FailThreshold consecutive failures
	// the destination goes suspect and Send starts reporting it.
	nw := NewInProc()
	m, err := NewMessengerOpts(nw, "solo", nil, Options{
		DialTimeout:   100 * time.Millisecond,
		FailThreshold: 2,
		BackoffBase:   5 * time.Second, // long enough to observe
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	deadline := time.Now().Add(5 * time.Second)
	for {
		err := m.Send("ghost", env(wire.KindAgent, "x"))
		if errors.Is(err, ErrPeerSuspect) {
			break
		}
		if err != nil {
			t.Fatalf("unexpected send error: %v", err)
		}
		if time.Now().After(deadline) {
			t.Fatal("destination never went suspect")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if !m.Suspect("ghost") {
		t.Fatal("Suspect() disagrees with Send")
	}
	if m.Dropped() == 0 {
		t.Fatal("failed deliveries not counted as dropped")
	}
}

func TestMessengerRedialAfterPeerRestart(t *testing.T) {
	nw := TCP{}
	c1 := newCollector()
	recv, err := NewMessenger(nw, "127.0.0.1:0", c1.handle)
	if err != nil {
		t.Fatal(err)
	}
	addr := recv.Addr()
	send, err := NewMessenger(nw, "", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer send.Close()

	if err := send.Send(addr, env(wire.KindAgent, "one")); err != nil {
		t.Fatal(err)
	}
	c1.waitFor(t, 1)

	// Restart the receiver on the same address.
	recv.Close()
	c2 := newCollector()
	recv2, err := NewMessenger(nw, addr, c2.handle)
	if err != nil {
		t.Fatal(err)
	}
	defer recv2.Close()

	// The cached connection is dead; Send must transparently re-dial.
	// The first send may be consumed by a half-closed socket, so allow a
	// couple of attempts like a real client would.
	var sent bool
	for i := 0; i < 3 && !sent; i++ {
		if err := send.Send(addr, env(wire.KindAgent, "two")); err == nil {
			select {
			case <-time.After(50 * time.Millisecond):
			}
			c2.mu.Lock()
			sent = len(c2.got) > 0
			c2.mu.Unlock()
		}
	}
	if !sent {
		t.Fatal("message never reached restarted peer")
	}
}

func TestMessengerClosedSendFails(t *testing.T) {
	nw := NewInProc()
	m, _ := NewMessenger(nw, "x", nil)
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	if err := m.Send("x", env(wire.KindAgent, "late")); err != ErrMessengerClosed {
		t.Fatalf("send after close: %v", err)
	}
	if err := m.Close(); err != nil {
		t.Fatalf("double close: %v", err)
	}
}

func TestInProcListenDuplicateAddr(t *testing.T) {
	nw := NewInProc()
	l, err := nw.Listen("a")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if _, err := nw.Listen("a"); err == nil {
		t.Fatal("duplicate listen succeeded")
	}
}

func TestInProcAutoAddr(t *testing.T) {
	nw := NewInProc()
	l1, _ := nw.Listen("")
	l2, _ := nw.Listen("")
	defer l1.Close()
	defer l2.Close()
	if l1.Addr().String() == l2.Addr().String() {
		t.Fatal("auto addresses collide")
	}
	if l1.Addr().Network() != "inproc" {
		t.Fatalf("network = %q", l1.Addr().Network())
	}
}

func TestInProcDialClosedListener(t *testing.T) {
	nw := NewInProc()
	l, _ := nw.Listen("a")
	l.Close()
	if _, err := nw.Dial("a"); err == nil {
		t.Fatal("dial to closed listener succeeded")
	}
}

func TestInProcDropSimulatesAddressChange(t *testing.T) {
	nw := NewInProc()
	l, _ := nw.Listen("old-ip")
	defer l.Close()
	nw.Drop("old-ip")
	if _, err := nw.Dial("old-ip"); err == nil {
		t.Fatal("dial to dropped address succeeded")
	}
}

func TestInProcConnIsUsable(t *testing.T) {
	nw := NewInProc()
	l, _ := nw.Listen("svc")
	defer l.Close()

	done := make(chan string, 1)
	go func() {
		conn, err := l.Accept()
		if err != nil {
			done <- err.Error()
			return
		}
		defer conn.Close()
		buf := make([]byte, 5)
		if _, err := conn.Read(buf); err != nil {
			done <- err.Error()
			return
		}
		conn.Write([]byte("world"))
		done <- string(buf)
	}()

	conn, err := nw.Dial("svc")
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.Write([]byte("hello"))
	buf := make([]byte, 5)
	if _, err := conn.Read(buf); err != nil {
		t.Fatal(err)
	}
	if got := <-done; got != "hello" {
		t.Fatalf("server saw %q", got)
	}
	if string(buf) != "world" {
		t.Fatalf("client saw %q", buf)
	}
}

func TestAcceptAfterCloseReturnsErrClosed(t *testing.T) {
	nw := NewInProc()
	l, _ := nw.Listen("a")
	l.Close()
	if _, err := l.Accept(); err != net.ErrClosed {
		t.Fatalf("Accept after close: %v", err)
	}
}
