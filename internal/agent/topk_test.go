package agent

import (
	"reflect"
	"testing"

	"bestpeer/internal/storm"
	"bestpeer/internal/wire"
)

func topkStore(t *testing.T) *storm.Store {
	t.Helper()
	s := testStore(t) // song-1 (4B, jazz), song-2 (8B, rock), jazz-notes (2B)
	s.Put(&storm.Object{Name: "song-3", Keywords: []string{"jazz"}, Data: make([]byte, 100)})
	s.Put(&storm.Object{Name: "song-4", Keywords: []string{"jazz"}, Data: make([]byte, 50)})
	return s
}

func TestTopKAgentSelectsLargest(t *testing.T) {
	store := topkStore(t)
	a := &TopKAgent{Query: "jazz", K: 2, IncludeData: true}
	res, err := a.Execute(&Context{Store: store})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 {
		t.Fatalf("results = %+v", res)
	}
	if res[0].Name != "song-3" || len(res[0].Data) != 100 {
		t.Fatalf("first = %s (%dB)", res[0].Name, len(res[0].Data))
	}
	if res[1].Name != "song-4" || len(res[1].Data) != 50 {
		t.Fatalf("second = %s (%dB)", res[1].Name, len(res[1].Data))
	}
}

func TestTopKAgentNamesOnlyAnnotatesSizes(t *testing.T) {
	store := topkStore(t)
	a := &TopKAgent{Query: "jazz", K: 1}
	res, err := a.Execute(&Context{Store: store})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || string(res[0].Data) != "100 bytes" {
		t.Fatalf("results = %+v", res)
	}
}

func TestTopKAgentKLargerThanMatches(t *testing.T) {
	store := topkStore(t)
	a := &TopKAgent{Query: "rock", K: 99}
	res, err := a.Execute(&Context{Store: store})
	if err != nil || len(res) != 1 {
		t.Fatalf("results = %+v, %v", res, err)
	}
}

func TestTopKAgentDeterministicTies(t *testing.T) {
	store := testStore(t)
	store.Put(&storm.Object{Name: "tie-b", Keywords: []string{"t"}, Data: []byte("xxxx")})
	store.Put(&storm.Object{Name: "tie-a", Keywords: []string{"t"}, Data: []byte("yyyy")})
	a := &TopKAgent{Query: "t", K: 1}
	res, _ := a.Execute(&Context{Store: store})
	if len(res) != 1 || res[0].Name != "tie-a" {
		t.Fatalf("tie broke to %+v, want tie-a (name order)", res)
	}
}

func TestTopKStateRoundTrip(t *testing.T) {
	r := NewRegistry()
	if err := RegisterBuiltins(r); err != nil {
		t.Fatal(err)
	}
	a := &TopKAgent{Query: "q", K: 7, IncludeData: true}
	st, err := a.State()
	if err != nil {
		t.Fatal(err)
	}
	got, err := r.New(TopKClass, st)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, a) {
		t.Fatalf("round trip = %+v", got)
	}
}

func TestTopKRejectsInvalidK(t *testing.T) {
	a := &TopKAgent{Query: "q", K: 0}
	if _, err := a.State(); err == nil {
		t.Fatal("K=0 shipped")
	}
	f := NewTopKFactory()
	var e wire.Encoder
	e.String("q")
	e.Uvarint(0)
	e.Bool(false)
	if _, err := f.New(e.Bytes()); err == nil {
		t.Fatal("K=0 reconstructed")
	}
}

func TestTopKHonoursActiveObjects(t *testing.T) {
	store := topkStore(t)
	store.Put(&storm.Object{
		Name: "jazz-classified", Keywords: []string{"jazz"},
		Kind: storm.ActiveObject, ActiveClass: "vault",
		Data: make([]byte, 2000),
	})
	set := NewActiveSet()
	set.Add(&LevelFilter{FilterName: "vault", MinLevel: 9})
	// Low clearance: the big classified object is invisible, so top-1 is
	// the 100-byte public one.
	a := &TopKAgent{Query: "jazz", K: 1}
	res, err := a.Execute(&Context{Store: store, ActiveNodes: set, AccessLevel: 0})
	if err != nil || len(res) != 1 || res[0].Name != "song-3" {
		t.Fatalf("low clearance top = %+v, %v", res, err)
	}
	// High clearance sees it.
	res, _ = a.Execute(&Context{Store: store, ActiveNodes: set, AccessLevel: 9})
	if len(res) != 1 || res[0].Name != "jazz-classified" {
		t.Fatalf("high clearance top = %+v", res)
	}
}
