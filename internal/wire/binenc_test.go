package wire

import (
	"math"
	"testing"
	"testing/quick"
)

func TestEncoderDecoderAllFields(t *testing.T) {
	id := NewMsgID()
	bp := BPID{LIGLO: "l:9", Node: 77}

	var e Encoder
	e.Uvarint(300)
	e.Varint(-42)
	e.Uint8(7)
	e.Bool(true)
	e.Bool(false)
	e.Float64(3.5)
	e.String("keyword")
	e.Bytes2([]byte{1, 2, 3})
	e.MsgID(id)
	e.BPID(bp)

	d := NewDecoder(e.Bytes())
	if v := d.Uvarint(); v != 300 {
		t.Fatalf("Uvarint = %d", v)
	}
	if v := d.Varint(); v != -42 {
		t.Fatalf("Varint = %d", v)
	}
	if v := d.Uint8(); v != 7 {
		t.Fatalf("Uint8 = %d", v)
	}
	if !d.Bool() || d.Bool() {
		t.Fatal("Bool round trip failed")
	}
	if v := d.Float64(); v != 3.5 {
		t.Fatalf("Float64 = %v", v)
	}
	if v := d.String(); v != "keyword" {
		t.Fatalf("String = %q", v)
	}
	if b := d.Bytes2(); len(b) != 3 || b[0] != 1 || b[2] != 3 {
		t.Fatalf("Bytes2 = %v", b)
	}
	if got := d.MsgID(); got != id {
		t.Fatal("MsgID mismatch")
	}
	if got := d.BPID(); got != bp {
		t.Fatalf("BPID = %v", got)
	}
	if err := d.Finish(); err != nil {
		t.Fatalf("Finish: %v", err)
	}
}

func TestDecoderTruncation(t *testing.T) {
	var e Encoder
	e.String("hello")
	e.Uvarint(9)
	full := e.Bytes()
	for cut := 0; cut < len(full); cut++ {
		d := NewDecoder(full[:cut])
		_ = d.String()
		_ = d.Uvarint()
		if d.Err() == nil && cut < len(full) {
			// A prefix may decode the string but must then fail the uvarint,
			// except when cut==len(full).
			t.Fatalf("decoder accepted truncation to %d bytes", cut)
		}
	}
}

func TestDecoderErrorSticks(t *testing.T) {
	d := NewDecoder(nil)
	_ = d.Uint8() // fails
	if d.Err() == nil {
		t.Fatal("expected error after reading empty buffer")
	}
	// Subsequent reads return zero values without panicking.
	if d.Uvarint() != 0 || d.String() != "" || d.Bytes2() != nil || d.Float64() != 0 {
		t.Fatal("post-error reads should return zero values")
	}
	if !d.MsgID().IsZero() {
		t.Fatal("post-error MsgID should be zero")
	}
	if err := d.Finish(); err == nil {
		t.Fatal("Finish should report the sticky error")
	}
}

func TestDecoderTrailingBytes(t *testing.T) {
	var e Encoder
	e.Uint8(1)
	e.Uint8(2)
	d := NewDecoder(e.Bytes())
	_ = d.Uint8()
	if err := d.Finish(); err == nil {
		t.Fatal("Finish should reject trailing bytes")
	}
	if d.Remaining() != 1 {
		t.Fatalf("Remaining = %d, want 1", d.Remaining())
	}
}

func TestDecoderCorruptLength(t *testing.T) {
	// A giant declared string length must not allocate or succeed.
	var e Encoder
	e.Uvarint(math.MaxUint32)
	d := NewDecoder(e.Bytes())
	if s := d.String(); s != "" || d.Err() == nil {
		t.Fatal("corrupt length accepted")
	}
}

func TestBinencProperties(t *testing.T) {
	strRT := func(s string) bool {
		var e Encoder
		e.String(s)
		d := NewDecoder(e.Bytes())
		return d.String() == s && d.Finish() == nil
	}
	if err := quick.Check(strRT, nil); err != nil {
		t.Fatalf("string round trip: %v", err)
	}

	intRT := func(u uint64, i int64) bool {
		var e Encoder
		e.Uvarint(u)
		e.Varint(i)
		d := NewDecoder(e.Bytes())
		return d.Uvarint() == u && d.Varint() == i && d.Finish() == nil
	}
	if err := quick.Check(intRT, nil); err != nil {
		t.Fatalf("int round trip: %v", err)
	}

	floatRT := func(f float64) bool {
		var e Encoder
		e.Float64(f)
		d := NewDecoder(e.Bytes())
		got := d.Float64()
		if math.IsNaN(f) {
			return math.IsNaN(got)
		}
		return got == f && d.Finish() == nil
	}
	if err := quick.Check(floatRT, nil); err != nil {
		t.Fatalf("float round trip: %v", err)
	}

	bpidRT := func(liglo string, node uint64) bool {
		var e Encoder
		e.BPID(BPID{LIGLO: liglo, Node: node})
		d := NewDecoder(e.Bytes())
		got := d.BPID()
		return got.LIGLO == liglo && got.Node == node && d.Finish() == nil
	}
	if err := quick.Check(bpidRT, nil); err != nil {
		t.Fatalf("bpid round trip: %v", err)
	}
}
