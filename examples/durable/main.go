// Durable: the storage-manager extensions working together.
//
// A node's StorM store is opened with all three durability extensions —
// write-ahead log, persistent B+tree catalog, and persistent inverted
// keyword index. The program writes a batch of objects, then simulates a
// crash (abandoning the store without a clean close, losing every dirty
// buffer-pool page), reopens, and shows that WAL recovery restored every
// acknowledged operation, with the catalog and index consistent. Finally
// it compacts the store, reclaiming the space left by deletions.
//
// Run with: go run ./examples/durable
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"bestpeer/internal/storm"
)

func open(dir string) *storm.Store {
	s, err := storm.Open(filepath.Join(dir, "library.storm"), storm.Options{
		WALPath:           filepath.Join(dir, "library.wal"),
		WALSync:           true,
		PersistentCatalog: true,
		PersistentIndex:   true,
	})
	if err != nil {
		log.Fatal(err)
	}
	return s
}

func main() {
	dir, err := os.MkdirTemp("", "bestpeer-durable")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	s := open(dir)
	genres := []string{"jazz", "classical", "rock"}
	for i := 0; i < 120; i++ {
		_, err := s.Put(&storm.Object{
			Name:     fmt.Sprintf("track-%03d.mp3", i),
			Keywords: []string{genres[i%3]},
			Data:     make([]byte, 700),
		})
		if err != nil {
			log.Fatal(err)
		}
	}
	for i := 0; i < 120; i += 2 { // half the library is deleted again
		if err := s.Delete(fmt.Sprintf("track-%03d.mp3", i)); err != nil {
			log.Fatal(err)
		}
	}
	st := s.Stats()
	fmt.Printf("before crash: %d objects, %d WAL records, %d pages\n",
		st.Objects, st.WALRecords, st.TotalPages)

	// Simulate a crash: no Close, no flush. Dirty pages die with the
	// process; only the WAL (fsynced per operation) survives.
	s.Abandon()

	r := open(dir)
	jazz, err := r.LookupKeyword("jazz")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after recovery: %d objects, %d jazz tracks via the index\n",
		r.Len(), len(jazz))

	// Compact away the deletion debris.
	slim := filepath.Join(dir, "library-compact.storm")
	if err := r.CompactTo(slim, storm.Options{
		PersistentCatalog: true, PersistentIndex: true,
	}); err != nil {
		log.Fatal(err)
	}
	before := r.Stats().TotalPages
	_ = r.Close() // demo teardown; the compacted copy is what matters now

	c, err := storm.Open(slim, storm.Options{PersistentCatalog: true, PersistentIndex: true})
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()
	fmt.Printf("after compaction: %d objects, %d pages (was %d)\n",
		c.Len(), c.Stats().TotalPages, before)
}
