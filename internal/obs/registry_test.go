package obs

import (
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_total", "a counter")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if again := r.Counter("test_total", "a counter"); again != c {
		t.Fatal("same name+labels must return the same handle")
	}

	g := r.Gauge("test_depth", "a gauge")
	g.Set(7)
	g.Inc()
	g.Dec()
	g.Add(-2)
	if got := g.Value(); got != 5 {
		t.Fatalf("gauge = %d, want 5", got)
	}
}

func TestLabelsAreDistinctInstances(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("msgs_total", "messages", L("kind", "agent"))
	b := r.Counter("msgs_total", "messages", L("kind", "result"))
	if a == b {
		t.Fatal("different labels must be different instances")
	}
	a.Add(3)
	b.Inc()
	snap := r.Snapshot()
	f := snap.Family("msgs_total")
	if f == nil || len(f.Metrics) != 2 {
		t.Fatalf("family = %+v, want 2 instances", f)
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds", "latency", []float64{0.01, 0.1, 1})
	for _, v := range []float64{0.005, 0.05, 0.05, 0.5, 5} {
		h.Observe(v)
	}
	h.ObserveDuration(20 * time.Millisecond)
	if h.Count() != 6 {
		t.Fatalf("count = %d, want 6", h.Count())
	}
	snap := r.Snapshot()
	m := snap.Family("lat_seconds").Metrics[0]
	if m.Count != 6 {
		t.Fatalf("snapshot count = %d, want 6", m.Count)
	}
	// Cumulative buckets: ≤0.01: 1, ≤0.1: 4, ≤1: 5, +Inf: 6.
	want := []uint64{1, 4, 5, 6}
	if len(m.Buckets) != 4 {
		t.Fatalf("buckets = %+v, want 4", m.Buckets)
	}
	for i, b := range m.Buckets {
		if b.Count != want[i] {
			t.Fatalf("bucket %d = %d, want %d", i, b.Count, want[i])
		}
	}
	if !math.IsInf(m.Buckets[3].UpperBound, 1) {
		t.Fatalf("last bucket bound = %v, want +Inf", m.Buckets[3].UpperBound)
	}
	if got := m.Sum; math.Abs(got-5.625) > 1e-9 {
		t.Fatalf("sum = %v, want 5.625", got)
	}
}

func TestGaugeFuncAndValueHelper(t *testing.T) {
	r := NewRegistry()
	v := 3.0
	r.GaugeFunc("pool_objects", "objects", func() float64 { return v })
	if got := r.Snapshot().Value("pool_objects"); got != 3 {
		t.Fatalf("gauge func = %v, want 3", got)
	}
	// Re-registration replaces the function.
	r.GaugeFunc("pool_objects", "objects", func() float64 { return 9 })
	if got := r.Snapshot().Value("pool_objects"); got != 9 {
		t.Fatalf("after rebind = %v, want 9", got)
	}
	if got := r.Snapshot().Value("missing"); got != 0 {
		t.Fatalf("missing family = %v, want 0", got)
	}
}

func TestTypeMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x_total", "x")
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering a counter as a histogram must panic")
		}
	}()
	r.Histogram("x_total", "x", LatencyBuckets)
}

func TestWritePrometheusFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("app_msgs_total", "messages handled", L("kind", "agent")).Add(12)
	r.Gauge("app_queue_depth", "queue depth").Set(3)
	h := r.Histogram("app_lat_seconds", "latency", []float64{0.5, 1})
	h.Observe(0.25)
	h.Observe(2)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# HELP app_msgs_total messages handled\n",
		"# TYPE app_msgs_total counter\n",
		`app_msgs_total{kind="agent"} 12` + "\n",
		"# TYPE app_queue_depth gauge\n",
		"app_queue_depth 3\n",
		"# TYPE app_lat_seconds histogram\n",
		`app_lat_seconds_bucket{le="0.5"} 1` + "\n",
		`app_lat_seconds_bucket{le="1"} 1` + "\n",
		`app_lat_seconds_bucket{le="+Inf"} 2` + "\n",
		"app_lat_seconds_sum 2.25\n",
		"app_lat_seconds_count 2\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("esc_total", "esc", L("path", `a"b\c`+"\n")).Inc()
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if want := `esc_total{path="a\"b\\c\n"} 1`; !strings.Contains(b.String(), want) {
		t.Fatalf("escaping wrong:\n%s", b.String())
	}
}

func TestWriteJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("j_total", "j").Add(2)
	var b strings.Builder
	if err := r.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `"j_total"`) {
		t.Fatalf("json missing family:\n%s", b.String())
	}
}

func TestWriteJSONHistogramRoundTrips(t *testing.T) {
	// The +Inf bucket has no JSON number encoding; it must travel as the
	// Prometheus-style string and parse back to an infinity.
	r := NewRegistry()
	r.Histogram("jh_seconds", "jh", []float64{0.5, 1}).Observe(2)
	var b strings.Builder
	if err := r.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `"le": "+Inf"`) {
		t.Fatalf("json missing +Inf bucket:\n%s", b.String())
	}
	var back Snapshot
	if err := json.Unmarshal([]byte(b.String()), &back); err != nil {
		t.Fatal(err)
	}
	buckets := back.Family("jh_seconds").Metrics[0].Buckets
	if len(buckets) != 3 || !math.IsInf(buckets[2].UpperBound, 1) {
		t.Fatalf("buckets did not round-trip: %+v", buckets)
	}
	if buckets[0].UpperBound != 0.5 || buckets[2].Count != 1 {
		t.Fatalf("bucket values did not round-trip: %+v", buckets)
	}
}

func TestConcurrentUpdates(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := r.Counter("conc_total", "concurrent")
			h := r.Histogram("conc_seconds", "concurrent", LatencyBuckets)
			for j := 0; j < 1000; j++ {
				c.Inc()
				h.Observe(0.001)
				if j%100 == 0 {
					_ = r.Snapshot()
				}
			}
		}()
	}
	wg.Wait()
	if got := r.Snapshot().Value("conc_total"); got != 8000 {
		t.Fatalf("counter = %v, want 8000", got)
	}
}

func TestHistogramExemplars(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("ex_seconds", "exemplar test", []float64{0.1, 1})
	h.ObserveExemplar(0.05, "fast-1")
	h.ObserveExemplar(0.06, "fast-2") // replaces fast-1 in the same bucket
	h.ObserveExemplar(5, "slow-1")    // lands in +Inf
	h.ObserveExemplar(0.5, "")        // empty id: observe only
	snap := r.Snapshot()
	buckets := snap.Family("ex_seconds").Metrics[0].Buckets
	if buckets[0].Exemplar != "fast-2" {
		t.Fatalf("bucket 0 exemplar = %q, want fast-2", buckets[0].Exemplar)
	}
	if buckets[1].Exemplar != "" {
		t.Fatalf("bucket 1 exemplar = %q, want empty (observed with no id)", buckets[1].Exemplar)
	}
	if buckets[2].Exemplar != "slow-1" {
		t.Fatalf("+Inf exemplar = %q, want slow-1", buckets[2].Exemplar)
	}
	// The tail exemplar is the slowest recent observation's ID.
	if got := snap.TailExemplar("ex_seconds"); got != "slow-1" {
		t.Fatalf("TailExemplar = %q, want slow-1", got)
	}
	if got := snap.TailExemplar("missing"); got != "" {
		t.Fatalf("TailExemplar(missing) = %q", got)
	}
	// Exemplars survive the JSON round trip.
	var b strings.Builder
	if err := r.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal([]byte(b.String()), &back); err != nil {
		t.Fatal(err)
	}
	if got := back.TailExemplar("ex_seconds"); got != "slow-1" {
		t.Fatalf("round-tripped TailExemplar = %q, want slow-1", got)
	}
}

func TestSnapshotDeltaSince(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("d_total", "delta counter")
	g := r.Gauge("d_depth", "delta gauge")
	h := r.Histogram("d_seconds", "delta histogram", []float64{1})
	lc := r.Counter("d_labeled_total", "labeled", L("where", "base"))
	c.Add(10)
	g.Set(4)
	h.Observe(0.5)
	lc.Add(3)
	prev := r.Snapshot()
	c.Add(5)
	g.Set(9)
	h.ObserveExemplar(2, "tail-q")
	lc.Add(2)
	r.Counter("d_labeled_total", "labeled", L("where", "serve")).Add(7)
	cur := r.Snapshot()

	d := cur.DeltaSince(prev)
	if got := d.Value("d_total"); got != 5 {
		t.Fatalf("counter delta = %v, want 5", got)
	}
	// Gauges pass through as levels, not deltas.
	if got := d.Value("d_depth"); got != 9 {
		t.Fatalf("gauge level = %v, want 9", got)
	}
	// New labeled instance deltas from zero; Total sums across labels.
	if got := d.Total("d_labeled_total"); got != 9 {
		t.Fatalf("labeled delta total = %v, want 2+7", got)
	}
	hm := d.Family("d_seconds").Metrics[0]
	if hm.Count != 1 || hm.Sum != 2 {
		t.Fatalf("histogram delta count=%d sum=%v, want 1/2", hm.Count, hm.Sum)
	}
	if hm.Buckets[0].Count != 0 || hm.Buckets[1].Count != 1 {
		t.Fatalf("histogram bucket deltas = %+v", hm.Buckets)
	}
	// Exemplars ride through from the current snapshot.
	if got := d.TailExemplar("d_seconds"); got != "tail-q" {
		t.Fatalf("delta exemplar = %q, want tail-q", got)
	}
	// A nil prev (first scrape) deltas everything from zero.
	if got := cur.DeltaSince(nil).Value("d_total"); got != 15 {
		t.Fatalf("delta from nil = %v, want 15", got)
	}
	// A counter that went backwards (restart) deltas from zero too.
	r2 := NewRegistry()
	r2.Counter("d_total", "delta counter").Add(2)
	if got := r2.Snapshot().DeltaSince(prev).Value("d_total"); got != 2 {
		t.Fatalf("restart delta = %v, want 2", got)
	}
}
