package liglo

import (
	"errors"
	"testing"

	"bestpeer/internal/obs"
)

// countKinds tallies journal events by kind for assertions.
func countKinds(j *obs.Journal) map[obs.EventKind]int {
	out := map[obs.EventKind]int{}
	events, _, _ := j.Since(0, 0)
	for _, e := range events {
		out[e.Kind]++
	}
	return out
}

// TestDeregisterMarksOfflineImmediately pins the graceful-leave contract:
// a member's own announcement flips it offline without waiting for a
// probe sweep, the BPID survives for a later Rejoin, and the server's
// journal and counters record the transition.
func TestDeregisterMarksOfflineImmediately(t *testing.T) {
	j := obs.NewJournal("liglo-1", 64)
	_, srv, cli := newPair(t, ServerConfig{Journal: j})
	id, _, err := cli.Register(srv.Addr(), "node-1")
	if err != nil {
		t.Fatal(err)
	}
	if err := cli.Deregister(id); err != nil {
		t.Fatal(err)
	}
	addr, online, err := cli.Lookup(id)
	if err != nil {
		t.Fatal(err)
	}
	if online || addr != "node-1" {
		t.Fatalf("after deregister: addr=%q online=%v, want node-1 offline", addr, online)
	}
	if got := srv.Stats().Deregisters; got != 1 {
		t.Fatalf("Deregisters = %d, want 1", got)
	}
	kinds := countKinds(j)
	if kinds[obs.EvMemberDeregistered] != 1 {
		t.Fatalf("journal deregistered events = %d, want 1", kinds[obs.EvMemberDeregistered])
	}
	if kinds[obs.EvMemberOffline] != 1 {
		t.Fatalf("journal offline events = %d, want 1", kinds[obs.EvMemberOffline])
	}

	// Deregister is idempotent: the member is already offline, so the
	// second announcement succeeds without a second offline transition.
	if err := cli.Deregister(id); err != nil {
		t.Fatal(err)
	}
	if kinds = countKinds(j); kinds[obs.EvMemberOffline] != 1 {
		t.Fatalf("second deregister re-journalled offline: %d events", kinds[obs.EvMemberOffline])
	}

	// The identity survives: Rejoin brings the member back online at a
	// new address — the restart half of a churn cycle.
	if err := cli.Rejoin(id, "node-1b"); err != nil {
		t.Fatal(err)
	}
	addr, online, err = cli.Lookup(id)
	if err != nil {
		t.Fatal(err)
	}
	if !online || addr != "node-1b" {
		t.Fatalf("after rejoin: addr=%q online=%v, want node-1b online", addr, online)
	}
}

// TestDeregisterRejections pins the protocol errors: an unknown member
// and a BPID homed elsewhere are both terminal rejections, and neither
// disturbs registered state.
func TestDeregisterRejections(t *testing.T) {
	_, srv, cli := newPair(t, ServerConfig{})
	id, _, err := cli.Register(srv.Addr(), "node-1")
	if err != nil {
		t.Fatal(err)
	}

	bogus := id
	bogus.Node = 999
	if err := cli.Deregister(bogus); !errors.Is(err, ErrUnknown) {
		t.Fatalf("unknown member: err = %v, want ErrUnknown", err)
	}

	// A request that reaches a server it is not homed at is rejected
	// before any member lookup (exercised at the handler layer, since
	// the client always routes by the BPID's home field).
	foreign := id
	foreign.LIGLO = "liglo-elsewhere"
	resp := srv.handleDeregister(&deregisterReq{ID: foreign})
	r, err := decodeDeregisterResp(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if r.Err != ErrWrongHome.Error() {
		t.Fatalf("foreign home: err = %q, want %q", r.Err, ErrWrongHome.Error())
	}

	// The real member is untouched by both rejections.
	if _, online, err := cli.Lookup(id); err != nil || !online {
		t.Fatalf("member disturbed: online=%v err=%v", online, err)
	}
	if got := srv.Stats().Deregisters; got != 0 {
		t.Fatalf("rejections counted as deregisters: %d", got)
	}
}

// TestSweepDoesNotResurrectDeregisteredMember pins the live-drill
// regression: a gracefully-departed member's process usually stays up
// awaiting a Rejoin, so its address keeps accepting dials — the liveness
// sweep must not take that as evidence the member is back, or Replenish
// hands leavers straight back to every repairing node. Only an explicit
// Rejoin ends the departure.
func TestSweepDoesNotResurrectDeregisteredMember(t *testing.T) {
	j := obs.NewJournal("liglo-1", 64)
	nw, srv, cli := newPair(t, ServerConfig{Journal: j})

	// The member's address stays bound after it leaves, exactly like a
	// live node that called Leave without exiting.
	ln, err := nw.Listen("node-1")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	id, _, err := cli.Register(srv.Addr(), "node-1")
	if err != nil {
		t.Fatal(err)
	}
	if err := cli.Deregister(id); err != nil {
		t.Fatal(err)
	}

	srv.CheckNow()
	srv.CheckNow()
	if _, online, err := cli.Lookup(id); err != nil || online {
		t.Fatalf("sweep resurrected deregistered member: online=%v err=%v", online, err)
	}
	if kinds := countKinds(j); kinds[obs.EvMemberOnline] != 0 {
		t.Fatalf("journal shows %d member-online events, want 0", kinds[obs.EvMemberOnline])
	}

	// Rejoin is the one path back — and afterwards the sweep resumes
	// treating the (dialable) member as online.
	if err := cli.Rejoin(id, "node-1"); err != nil {
		t.Fatal(err)
	}
	srv.CheckNow()
	if _, online, err := cli.Lookup(id); err != nil || !online {
		t.Fatalf("rejoined member not online after sweep: online=%v err=%v", online, err)
	}
}
