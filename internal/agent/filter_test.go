package agent

import (
	"errors"
	"testing"

	"bestpeer/internal/storm"
)

func mustCompile(t *testing.T, src string) Predicate {
	t.Helper()
	p, err := CompileFilter(src)
	if err != nil {
		t.Fatalf("CompileFilter(%q): %v", src, err)
	}
	return p
}

var filterObjs = []*storm.Object{
	{Name: "Report-2001", Keywords: []string{"finance", "annual"}, Data: []byte("profits up")},
	{Name: "draft-memo", Keywords: []string{"internal"}, Data: []byte("DRAFT: do not share, large content here")},
	{Name: "song.mp3", Keywords: []string{"jazz"}, Kind: storm.StaticObject, Data: make([]byte, 1024)},
	{Name: "payroll", Keywords: []string{"finance"}, Kind: storm.ActiveObject, ActiveClass: "level-filter", Data: []byte("x")},
}

func evalAll(p Predicate) []string {
	var out []string
	for _, o := range filterObjs {
		if p(o) {
			out = append(out, o.Name)
		}
	}
	return out
}

func TestFilterPredicates(t *testing.T) {
	cases := []struct {
		expr string
		want []string
	}{
		{"keyword=finance", []string{"Report-2001", "payroll"}},
		{"keyword=FINANCE", []string{"Report-2001", "payroll"}}, // case-insensitive
		{"keyword~fin", []string{"Report-2001", "payroll"}},
		{"name=payroll", []string{"payroll"}},
		{"name~report", []string{"Report-2001"}},
		{"data~draft", []string{"draft-memo"}},
		{"size>100", []string{"song.mp3"}},
		{"size<5", []string{"payroll"}},
		{"size=10", []string{"Report-2001"}},
		{"kind=active", []string{"payroll"}},
		{"kind=static", []string{"Report-2001", "draft-memo", "song.mp3"}},
		{"keyword=finance & size<5", []string{"payroll"}},
		{"keyword=jazz | keyword=internal", []string{"draft-memo", "song.mp3"}},
		{"!keyword=finance", []string{"draft-memo", "song.mp3"}},
		{"!(keyword=finance | keyword=jazz)", []string{"draft-memo"}},
		{"keyword=finance & !kind=active", []string{"Report-2001"}},
		// Precedence: & binds tighter than |.
		{"keyword=jazz | keyword=finance & size<5", []string{"song.mp3", "payroll"}},
		{"(keyword=jazz | keyword=finance) & size<5", []string{"payroll"}},
		{`name="draft-memo"`, []string{"draft-memo"}},
		{"!!keyword=jazz", []string{"song.mp3"}},
	}
	for _, c := range cases {
		got := evalAll(mustCompile(t, c.expr))
		if len(got) != len(c.want) {
			t.Errorf("%q -> %v, want %v", c.expr, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("%q -> %v, want %v", c.expr, got, c.want)
				break
			}
		}
	}
}

func TestFilterSyntaxErrors(t *testing.T) {
	bad := []string{
		"",
		"keyword",
		"keyword=",
		"=jazz",
		"keyword=jazz &",
		"keyword=jazz | | keyword=rock",
		"(keyword=jazz",
		"keyword=jazz)",
		"size>abc",
		"kind=weird",
		"unknownfield=x",
		"name>alpha", // > not supported for strings
		"size~100",   // ~ not supported for size
		`name="unterminated`,
		"keyword=jazz extra",
		"@#$",
	}
	for _, src := range bad {
		if _, err := CompileFilter(src); !errors.Is(err, ErrFilterSyntax) {
			t.Errorf("CompileFilter(%q) = %v, want ErrFilterSyntax", src, err)
		}
	}
}

func TestLevelFilterRendering(t *testing.T) {
	obj := &storm.Object{
		Name: "salaries",
		Kind: storm.ActiveObject,
		Data: []byte("public header\n!2 managers only\n!5 executives only\nfooter"),
	}
	f := &LevelFilter{}
	if f.Name() != "level-filter" {
		t.Fatalf("default name = %q", f.Name())
	}

	data, ok := f.Render(obj, 0)
	if !ok || string(data) != "public header\nfooter" {
		t.Fatalf("level 0 render = %q, %v", data, ok)
	}
	data, _ = f.Render(obj, 2)
	if string(data) != "public header\nmanagers only\nfooter" {
		t.Fatalf("level 2 render = %q", data)
	}
	data, _ = f.Render(obj, 9)
	if string(data) != "public header\nmanagers only\nexecutives only\nfooter" {
		t.Fatalf("level 9 render = %q", data)
	}
}

func TestLevelFilterMinLevelDenies(t *testing.T) {
	f := &LevelFilter{FilterName: "classified", MinLevel: 3}
	if f.Name() != "classified" {
		t.Fatalf("name = %q", f.Name())
	}
	obj := &storm.Object{Data: []byte("content")}
	if _, ok := f.Render(obj, 2); ok {
		t.Fatal("below-MinLevel requester was admitted")
	}
	if data, ok := f.Render(obj, 3); !ok || string(data) != "content" {
		t.Fatal("at-MinLevel requester was denied")
	}
}

func TestParseLevelMarkerEdgeCases(t *testing.T) {
	cases := []struct {
		line  string
		level int
		rest  string
	}{
		{"plain", 0, "plain"},
		{"!3 secret", 3, "secret"},
		{"!12 deep", 12, "deep"},
		{"!nonum", 0, "!nonum"},
		{"!", 0, "!"},
		{"!7", 7, ""},
		{"", 0, ""},
	}
	for _, c := range cases {
		level, rest := parseLevelMarker([]byte(c.line))
		if level != c.level || string(rest) != c.rest {
			t.Errorf("parseLevelMarker(%q) = %d,%q want %d,%q", c.line, level, rest, c.level, c.rest)
		}
	}
}

func TestMarkLine(t *testing.T) {
	if MarkLine(0, "x") != "x" || MarkLine(-1, "x") != "x" {
		t.Fatal("MarkLine should pass through level<=0")
	}
	if MarkLine(4, "secret") != "!4 secret" {
		t.Fatalf("MarkLine = %q", MarkLine(4, "secret"))
	}
	// Round trip through the parser.
	level, rest := parseLevelMarker([]byte(MarkLine(4, "secret")))
	if level != 4 || string(rest) != "secret" {
		t.Fatal("MarkLine does not round trip")
	}
}

func TestActiveSetRenderObject(t *testing.T) {
	set := NewActiveSet()
	set.Add(&LevelFilter{})

	static := &storm.Object{Name: "s", Data: []byte("free")}
	if data, ok := set.RenderObject(static, 0); !ok || string(data) != "free" {
		t.Fatal("static object must pass through")
	}

	active := &storm.Object{Name: "a", Kind: storm.ActiveObject, ActiveClass: "level-filter",
		Data: []byte("pub\n!5 sec")}
	data, ok := set.RenderObject(active, 0)
	if !ok || string(data) != "pub" {
		t.Fatalf("active render = %q, %v", data, ok)
	}

	// Unknown active class fails closed.
	orphan := &storm.Object{Name: "o", Kind: storm.ActiveObject, ActiveClass: "missing"}
	if _, ok := set.RenderObject(orphan, 99); ok {
		t.Fatal("missing active node should deny access")
	}

	// Nil set also fails closed for active objects.
	var nilSet *ActiveSet
	if _, ok := nilSet.RenderObject(orphan, 99); ok {
		t.Fatal("nil ActiveSet should deny active objects")
	}
	if data, ok := nilSet.RenderObject(static, 0); !ok || string(data) != "free" {
		t.Fatal("nil ActiveSet should pass static objects")
	}
}

func TestActiveSetNames(t *testing.T) {
	set := NewActiveSet()
	set.Add(&LevelFilter{FilterName: "zeta"})
	set.Add(&LevelFilter{FilterName: "alpha"})
	names := set.Names()
	if len(names) != 2 || names[0] != "alpha" || names[1] != "zeta" {
		t.Fatalf("Names = %v", names)
	}
	if _, ok := set.Get("alpha"); !ok {
		t.Fatal("Get(alpha) failed")
	}
}

func TestKeywordAgentHonoursActiveObjects(t *testing.T) {
	store := testStore(t)
	store.Put(&storm.Object{
		Name:        "jazz-payroll",
		Keywords:    []string{"jazz"},
		Kind:        storm.ActiveObject,
		ActiveClass: "guard",
		Data:        []byte("pub\n!5 secret"),
	})
	set := NewActiveSet()
	set.Add(&LevelFilter{FilterName: "guard"})

	// Low access: secret line removed.
	a := &KeywordAgent{Query: "jazz"}
	res, err := a.Execute(&Context{Store: store, ActiveNodes: set, AccessLevel: 0})
	if err != nil {
		t.Fatal(err)
	}
	var payroll *Result
	for i := range res {
		if res[i].Name == "jazz-payroll" {
			payroll = &res[i]
		}
	}
	if payroll == nil || string(payroll.Data) != "pub" {
		t.Fatalf("active object leaked: %+v", payroll)
	}

	// High access: full content.
	res, _ = a.Execute(&Context{Store: store, ActiveNodes: set, AccessLevel: 9})
	for _, r := range res {
		if r.Name == "jazz-payroll" && string(r.Data) != "pub\nsecret" {
			t.Fatalf("high-access render = %q", r.Data)
		}
	}

	// MinLevel guard denies the object entirely.
	set.Add(&LevelFilter{FilterName: "guard", MinLevel: 3})
	res, _ = a.Execute(&Context{Store: store, ActiveNodes: set, AccessLevel: 0})
	for _, r := range res {
		if r.Name == "jazz-payroll" {
			t.Fatal("denied object still returned")
		}
	}
}
