package storm

import (
	"sort"
	"strings"
	"sync"
)

// KeywordIndex is an in-memory inverted index over a store's keywords,
// maintained incrementally and rebuilt from the pages at open. The paper's
// StorM agent scans every object per query; the index is the natural
// extension for nodes that answer many queries — MatchIndexed serves
// keyword-equality hits without touching most pages.
//
// Name-substring matches (the second half of Object.Matches semantics)
// cannot be served from a keyword index, so MatchIndexed unions the
// keyword postings with a name-only scan of the catalog, which is held in
// memory anyway.
type KeywordIndex struct {
	mu sync.RWMutex
	// postings maps a lowercased keyword to the names of objects
	// carrying it.
	postings map[string]map[string]struct{}
}

// NewKeywordIndex builds an index over the store's current contents.
func NewKeywordIndex(s *Store) (*KeywordIndex, error) {
	idx := &KeywordIndex{postings: make(map[string]map[string]struct{})}
	err := s.Scan(func(o *Object) bool {
		idx.Add(o)
		return true
	})
	if err != nil {
		return nil, err
	}
	return idx, nil
}

// Add indexes an object's keywords.
func (ix *KeywordIndex) Add(o *Object) {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	for _, k := range o.Keywords {
		key := strings.ToLower(k)
		set, ok := ix.postings[key]
		if !ok {
			set = make(map[string]struct{})
			ix.postings[key] = set
		}
		set[o.Name] = struct{}{}
	}
}

// Remove un-indexes an object.
func (ix *KeywordIndex) Remove(o *Object) {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	for _, k := range o.Keywords {
		key := strings.ToLower(k)
		if set, ok := ix.postings[key]; ok {
			delete(set, o.Name)
			if len(set) == 0 {
				delete(ix.postings, key)
			}
		}
	}
}

// Lookup returns the sorted names of objects carrying the keyword.
func (ix *KeywordIndex) Lookup(keyword string) []string {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	set := ix.postings[strings.ToLower(keyword)]
	out := make([]string, 0, len(set))
	for name := range set {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Keywords returns the sorted distinct keywords present.
func (ix *KeywordIndex) Keywords() []string {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	out := make([]string, 0, len(ix.postings))
	for k := range ix.postings {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// IndexedStore couples a Store with a KeywordIndex kept consistent
// through this wrapper's mutating methods.
type IndexedStore struct {
	*Store
	idx *KeywordIndex
}

// NewIndexedStore wraps the store, building the index from its contents.
func NewIndexedStore(s *Store) (*IndexedStore, error) {
	idx, err := NewKeywordIndex(s)
	if err != nil {
		return nil, err
	}
	return &IndexedStore{Store: s, idx: idx}, nil
}

// Index exposes the underlying index.
func (s *IndexedStore) Index() *KeywordIndex { return s.idx }

// Put stores the object and updates the index (including removing the
// postings of any object it replaces).
func (s *IndexedStore) Put(obj *Object) (OID, error) {
	if old, err := s.Store.Get(obj.Name); err == nil {
		s.idx.Remove(old)
	}
	oid, err := s.Store.Put(obj)
	if err != nil {
		return oid, err
	}
	s.idx.Add(obj)
	return oid, nil
}

// Delete removes the object and its postings.
func (s *IndexedStore) Delete(name string) error {
	old, err := s.Store.Get(name)
	if err != nil {
		return err
	}
	if err := s.Store.Delete(name); err != nil {
		return err
	}
	s.idx.Remove(old)
	return nil
}

// Match returns every object matching the query with the same semantics
// as Store.Match (keyword equality or name substring), but reads only the
// pages holding actual hits.
func (s *IndexedStore) Match(query string) ([]*Object, error) {
	if query == "" {
		return nil, nil
	}
	hitNames := make(map[string]struct{})
	for _, name := range s.idx.Lookup(query) {
		hitNames[name] = struct{}{}
	}
	q := strings.ToLower(query)
	for _, name := range s.Store.Names() {
		if strings.Contains(strings.ToLower(name), q) {
			hitNames[name] = struct{}{}
		}
	}
	names := make([]string, 0, len(hitNames))
	for n := range hitNames {
		names = append(names, n)
	}
	sort.Strings(names)

	out := make([]*Object, 0, len(names))
	for _, name := range names {
		obj, err := s.Store.Get(name)
		if err != nil {
			continue // deleted concurrently
		}
		out = append(out, obj)
	}
	return out, nil
}
