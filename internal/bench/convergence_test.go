package bench

import (
	"testing"

	"bestpeer/internal/obs"
	"bestpeer/internal/observatory"
	"bestpeer/internal/reconfig"
	"bestpeer/internal/topology"
)

// TestConvergenceShape asserts the paper's qualitative claim on the
// event-journal timeline: under BPR (MaxCount) the mean answer-hop
// distance decreases across successive repeats of the same query, while
// under BPS (Static) it stays exactly flat.
func TestConvergenceShape(t *testing.T) {
	timelines := Convergence(DefaultCost(), 42)
	if len(timelines) != 2 {
		t.Fatalf("Convergence returned %d timelines, want BPR and BPS", len(timelines))
	}
	var bpr, bps *StrategyTimeline
	for _, st := range timelines {
		if st.Strategy == "static" {
			bps = st
		} else {
			bpr = st
		}
	}
	if bpr == nil || bps == nil {
		t.Fatalf("missing a strategy: %+v", timelines)
	}
	if len(bpr.Rounds) != convergenceRounds || len(bps.Rounds) != convergenceRounds {
		t.Fatalf("rounds = %d/%d, want %d each", len(bpr.Rounds), len(bps.Rounds), convergenceRounds)
	}

	bprHops, bpsHops := bpr.MeanHops(), bps.MeanHops()
	// BPR: later rounds answer from strictly nearer peers than round 1,
	// and the final round is no farther than any intermediate one.
	if bprHops[len(bprHops)-1] >= bprHops[0] {
		t.Fatalf("BPR mean answer hops did not decrease: %v", bprHops)
	}
	for i := 1; i < len(bprHops); i++ {
		if bprHops[i] > bprHops[0] {
			t.Fatalf("BPR round %d regressed past round 1: %v", i+1, bprHops)
		}
	}
	// BPS: a static overlay on a deterministic simulator answers from
	// exactly the same distances every round.
	for i := 1; i < len(bpsHops); i++ {
		if bpsHops[i] != bpsHops[0] {
			t.Fatalf("BPS mean answer hops moved: %v", bpsHops)
		}
	}

	// The first BPR reconfiguration must have promoted peers, and the
	// rationale must be journalled (scores present, promoted peers
	// marked selected).
	r0 := bpr.Rounds[0]
	if len(r0.PeersAdded) == 0 || r0.EditDistance != len(r0.PeersAdded)+len(r0.PeersDropped) {
		t.Fatalf("BPR round 1 recorded no overlay edits: %+v", r0)
	}
	if len(r0.Scores) == 0 {
		t.Fatal("BPR round 1 has no reconfiguration rationale")
	}
	selected := make(map[string]bool)
	for _, sc := range r0.Scores {
		if sc.Selected {
			selected[sc.Addr] = true
		}
	}
	for _, added := range r0.PeersAdded {
		if !selected[added] {
			t.Fatalf("promoted peer %s not marked selected in rationale %+v", added, r0.Scores)
		}
	}
	// BPS must never edit the overlay.
	for i, r := range bps.Rounds {
		if r.EditDistance != 0 {
			t.Fatalf("BPS round %d edited the overlay: %+v", i+1, r)
		}
	}
}

// TestConvergenceEventPipeline checks the timeline really flows through
// the obs event pipeline: a journalled BPR run emits the full query
// lifecycle and the timeline folds from those events alone.
func TestConvergenceEventPipeline(t *testing.T) {
	tp := topology.Random(32, 4, 7)
	spec := fig8Spec(tp, 7)
	p := Params{Cost: DefaultCost(), Spec: spec, Query: "needle", MaxPeers: 8}
	journal := obs.NewJournal("sim-base", 4096)
	RunBestPeerObserved(tp, p, 2, reconfig.MaxCount{}, journal)

	events, _, missed := journal.Since(0, 0)
	if missed != 0 {
		t.Fatalf("journal overflowed: missed %d", missed)
	}
	counts := map[obs.EventKind]int{}
	for _, e := range events {
		counts[e.Kind]++
		if e.Node != "sim-base" {
			t.Fatalf("event not stamped with the journal's node: %+v", e)
		}
	}
	if counts[obs.EvQueryIssued] != 2 || counts[obs.EvQueryCompleted] != 2 {
		t.Fatalf("query lifecycle incomplete: %v", counts)
	}
	if counts[obs.EvAgentAnswered] == 0 || counts[obs.EvReconfigured] == 0 {
		t.Fatalf("missing answered/reconfigured events: %v", counts)
	}
	rounds := observatory.Timeline(events)
	if len(rounds) != 2 {
		t.Fatalf("timeline folded %d rounds from 2 queries", len(rounds))
	}
	if rounds[0].Answers == 0 || rounds[0].MeanAnswerHops <= 0 {
		t.Fatalf("round 1 empty: %+v", rounds[0])
	}
	// A nil journal must be a no-op, not a panic.
	RunBestPeerObserved(tp, p, 1, reconfig.MaxCount{}, nil)
}
