package vet

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one parsed and type-checked package ready for analysis.
type Package struct {
	Fset  *token.FileSet
	Path  string // import path within the module
	Dir   string
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Load parses and type-checks the packages matched by patterns, relative
// to dir (which must sit inside a Go module). Supported patterns are the
// subset the driver needs: a directory path, or a path ending in /...
// for a recursive walk. Test files are skipped — bpvet vets production
// code — and, like the go tool, the walk ignores testdata, vendor and
// hidden directories.
//
// Type-checking uses only the standard library: module-internal imports
// are resolved by loading the imported package recursively; everything
// else is handed to go/importer's source importer.
func Load(dir string, patterns []string) ([]*Package, error) {
	absDir, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	root, modPath, err := findModule(absDir)
	if err != nil {
		return nil, err
	}
	ld := &loader{
		fset:    token.NewFileSet(),
		root:    root,
		modPath: modPath,
		pkgs:    make(map[string]*Package),
		loading: make(map[string]bool),
	}
	ld.std = importer.ForCompiler(ld.fset, "source", nil)

	dirs, err := expandPatterns(absDir, patterns)
	if err != nil {
		return nil, err
	}
	var out []*Package
	for _, d := range dirs {
		pkg, err := ld.loadDir(d)
		if err != nil {
			return nil, err
		}
		if pkg != nil {
			out = append(out, pkg)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out, nil
}

// findModule walks upward from dir to the enclosing go.mod and returns
// the module root directory and module path.
func findModule(dir string) (root, modPath string, err error) {
	for d := dir; ; {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return d, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("vet: %s/go.mod has no module line", d)
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", "", fmt.Errorf("vet: no go.mod above %s", dir)
		}
		d = parent
	}
}

// expandPatterns resolves the driver's package patterns to directories.
func expandPatterns(base string, patterns []string) ([]string, error) {
	seen := make(map[string]bool)
	var dirs []string
	add := func(d string) {
		if !seen[d] {
			seen[d] = true
			dirs = append(dirs, d)
		}
	}
	for _, p := range patterns {
		if rest, ok := strings.CutSuffix(p, "..."); ok {
			start := filepath.Join(base, filepath.FromSlash(strings.TrimSuffix(rest, "/")))
			err := filepath.WalkDir(start, func(path string, d os.DirEntry, err error) error {
				if err != nil {
					return err
				}
				if !d.IsDir() {
					return nil
				}
				name := d.Name()
				if path != start && (name == "testdata" || name == "vendor" ||
					strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
					return filepath.SkipDir
				}
				if hasGoFiles(path) {
					add(path)
				}
				return nil
			})
			if err != nil {
				return nil, err
			}
			continue
		}
		d := filepath.Join(base, filepath.FromSlash(p))
		if !hasGoFiles(d) {
			return nil, fmt.Errorf("vet: no Go files in %s", d)
		}
		add(d)
	}
	return dirs, nil
}

func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		name := e.Name()
		if !e.IsDir() && strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go") {
			return true
		}
	}
	return false
}

// loader memoizes per-directory loads and doubles as the types.Importer
// for module-internal import paths.
type loader struct {
	fset    *token.FileSet
	root    string // module root directory
	modPath string // module import path
	std     types.Importer
	pkgs    map[string]*Package // keyed by directory
	loading map[string]bool     // cycle detection
}

// Import implements types.Importer.
func (l *loader) Import(path string) (*types.Package, error) {
	if path == l.modPath || strings.HasPrefix(path, l.modPath+"/") {
		rel := strings.TrimPrefix(strings.TrimPrefix(path, l.modPath), "/")
		pkg, err := l.loadDir(filepath.Join(l.root, filepath.FromSlash(rel)))
		if err != nil {
			return nil, err
		}
		if pkg == nil {
			return nil, fmt.Errorf("vet: no Go files in package %s", path)
		}
		return pkg.Types, nil
	}
	return l.std.Import(path)
}

// loadDir parses and type-checks the package in dir. Returns (nil, nil)
// when the directory holds no non-test Go files.
func (l *loader) loadDir(dir string) (*Package, error) {
	dir = filepath.Clean(dir)
	if pkg, ok := l.pkgs[dir]; ok {
		return pkg, nil
	}
	if l.loading[dir] {
		return nil, fmt.Errorf("vet: import cycle through %s", dir)
	}
	l.loading[dir] = true
	defer delete(l.loading, dir)

	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, nil
	}

	rel, err := filepath.Rel(l.root, dir)
	if err != nil {
		return nil, err
	}
	importPath := l.modPath
	if rel != "." {
		importPath += "/" + filepath.ToSlash(rel)
	}

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: l}
	tpkg, err := conf.Check(importPath, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("vet: type-checking %s: %w", importPath, err)
	}
	pkg := &Package{
		Fset:  l.fset,
		Path:  importPath,
		Dir:   dir,
		Files: files,
		Types: tpkg,
		Info:  info,
	}
	l.pkgs[dir] = pkg
	return pkg, nil
}
