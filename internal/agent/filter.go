package agent

import (
	"errors"
	"fmt"
	"strconv"
	"strings"

	"bestpeer/internal/storm"
)

// The filter expression language is how BestPeer's computational-power
// sharing works here: the requester writes a filter, the expression ships
// with the agent, and it is compiled and evaluated at the provider's site
// against the provider's objects — the requester's algorithm running on
// the provider's CPU.
//
// Grammar:
//
//	expr  := or
//	or    := and { '|' and }
//	and   := not { '&' not }
//	not   := '!' not | '(' expr ')' | pred
//	pred  := field op value
//	field := name | keyword | size | kind | data
//	op    := '=' (equals) | '~' (contains) | '>' | '<' (numeric)
//
// Values are bare words or double-quoted strings. String comparisons are
// case-insensitive. Examples:
//
//	keyword=jazz & size>512
//	name~report | (keyword=finance & !data~draft)
//	kind=active

// ErrFilterSyntax reports a malformed filter expression.
var ErrFilterSyntax = errors.New("agent: filter syntax error")

// Predicate is a compiled filter.
type Predicate func(*storm.Object) bool

// CompileFilter parses and compiles a filter expression.
func CompileFilter(src string) (Predicate, error) {
	p := &filterParser{src: src}
	p.next()
	pred, err := p.parseOr()
	if err != nil {
		return nil, err
	}
	if p.tok != tokEOF {
		return nil, fmt.Errorf("%w: unexpected %q at offset %d", ErrFilterSyntax, p.lit, p.off)
	}
	return pred, nil
}

type filterToken int

const (
	tokEOF filterToken = iota
	tokWord
	tokAnd    // &
	tokOr     // |
	tokNot    // !
	tokLParen // (
	tokRParen // )
	tokEq     // =
	tokTilde  // ~
	tokGT     // >
	tokLT     // <
	tokBad
)

type filterParser struct {
	src string
	pos int
	off int // start offset of current token
	tok filterToken
	lit string
}

func (p *filterParser) next() {
	for p.pos < len(p.src) && (p.src[p.pos] == ' ' || p.src[p.pos] == '\t') {
		p.pos++
	}
	p.off = p.pos
	if p.pos >= len(p.src) {
		p.tok, p.lit = tokEOF, ""
		return
	}
	c := p.src[p.pos]
	switch c {
	case '&':
		p.tok, p.lit = tokAnd, "&"
	case '|':
		p.tok, p.lit = tokOr, "|"
	case '!':
		p.tok, p.lit = tokNot, "!"
	case '(':
		p.tok, p.lit = tokLParen, "("
	case ')':
		p.tok, p.lit = tokRParen, ")"
	case '=':
		p.tok, p.lit = tokEq, "="
	case '~':
		p.tok, p.lit = tokTilde, "~"
	case '>':
		p.tok, p.lit = tokGT, ">"
	case '<':
		p.tok, p.lit = tokLT, "<"
	case '"':
		end := p.pos + 1
		for end < len(p.src) && p.src[end] != '"' {
			end++
		}
		if end >= len(p.src) {
			p.tok, p.lit = tokBad, p.src[p.pos:]
			p.pos = len(p.src)
			return
		}
		p.tok, p.lit = tokWord, p.src[p.pos+1:end]
		p.pos = end + 1
		return
	default:
		if isWordChar(c) {
			end := p.pos
			for end < len(p.src) && isWordChar(p.src[end]) {
				end++
			}
			p.tok, p.lit = tokWord, p.src[p.pos:end]
			p.pos = end
			return
		}
		p.tok, p.lit = tokBad, string(c)
	}
	p.pos++
}

func isWordChar(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' ||
		c >= '0' && c <= '9' || c == '_' || c == '-' || c == '.'
}

func (p *filterParser) parseOr() (Predicate, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.tok == tokOr {
		p.next()
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l, r := left, right
		left = func(o *storm.Object) bool { return l(o) || r(o) }
	}
	return left, nil
}

func (p *filterParser) parseAnd() (Predicate, error) {
	left, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.tok == tokAnd {
		p.next()
		right, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		l, r := left, right
		left = func(o *storm.Object) bool { return l(o) && r(o) }
	}
	return left, nil
}

func (p *filterParser) parseNot() (Predicate, error) {
	switch p.tok {
	case tokNot:
		p.next()
		inner, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return func(o *storm.Object) bool { return !inner(o) }, nil
	case tokLParen:
		p.next()
		inner, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		if p.tok != tokRParen {
			return nil, fmt.Errorf("%w: missing ')' at offset %d", ErrFilterSyntax, p.off)
		}
		p.next()
		return inner, nil
	default:
		return p.parsePred()
	}
}

func (p *filterParser) parsePred() (Predicate, error) {
	if p.tok != tokWord {
		return nil, fmt.Errorf("%w: expected field at offset %d, got %q", ErrFilterSyntax, p.off, p.lit)
	}
	field := strings.ToLower(p.lit)
	p.next()

	op := p.tok
	switch op {
	case tokEq, tokTilde, tokGT, tokLT:
	default:
		return nil, fmt.Errorf("%w: expected operator after %q at offset %d", ErrFilterSyntax, field, p.off)
	}
	p.next()

	if p.tok != tokWord {
		return nil, fmt.Errorf("%w: expected value at offset %d", ErrFilterSyntax, p.off)
	}
	value := p.lit
	p.next()

	return compilePred(field, op, value)
}

func compilePred(field string, op filterToken, value string) (Predicate, error) {
	lower := strings.ToLower(value)
	switch field {
	case "name":
		switch op {
		case tokEq:
			return func(o *storm.Object) bool { return strings.EqualFold(o.Name, value) }, nil
		case tokTilde:
			return func(o *storm.Object) bool {
				return strings.Contains(strings.ToLower(o.Name), lower)
			}, nil
		}
	case "keyword":
		switch op {
		case tokEq:
			return func(o *storm.Object) bool {
				for _, k := range o.Keywords {
					if strings.EqualFold(k, value) {
						return true
					}
				}
				return false
			}, nil
		case tokTilde:
			return func(o *storm.Object) bool {
				for _, k := range o.Keywords {
					if strings.Contains(strings.ToLower(k), lower) {
						return true
					}
				}
				return false
			}, nil
		}
	case "data":
		switch op {
		case tokTilde:
			return func(o *storm.Object) bool {
				return strings.Contains(strings.ToLower(string(o.Data)), lower)
			}, nil
		case tokEq:
			return func(o *storm.Object) bool { return string(o.Data) == value }, nil
		}
	case "size":
		n, err := strconv.Atoi(value)
		if err != nil {
			return nil, fmt.Errorf("%w: size wants a number, got %q", ErrFilterSyntax, value)
		}
		switch op {
		case tokEq:
			return func(o *storm.Object) bool { return len(o.Data) == n }, nil
		case tokGT:
			return func(o *storm.Object) bool { return len(o.Data) > n }, nil
		case tokLT:
			return func(o *storm.Object) bool { return len(o.Data) < n }, nil
		}
	case "kind":
		var want storm.ObjectKind
		switch lower {
		case "static":
			want = storm.StaticObject
		case "active":
			want = storm.ActiveObject
		default:
			return nil, fmt.Errorf("%w: kind wants static|active, got %q", ErrFilterSyntax, value)
		}
		if op == tokEq {
			return func(o *storm.Object) bool { return o.Kind == want }, nil
		}
	default:
		return nil, fmt.Errorf("%w: unknown field %q", ErrFilterSyntax, field)
	}
	return nil, fmt.Errorf("%w: operator not supported for field %q", ErrFilterSyntax, field)
}
