package qroute

import (
	"math"
	"math/rand"
	"sort"
	"sync"
	"time"
)

// RouteOptions tunes the learned routing index. Zero values pick the
// documented defaults.
type RouteOptions struct {
	// HalfLife is the exponential-decay half-life of the per-neighbor
	// hit counters: a neighbor that answered n times counts as n/2
	// after one half-life of silence. Default 5 minutes.
	HalfLife time.Duration
	// TopF is how many top-scoring first-hop neighbors a confident
	// selective route fans out to. Default 2.
	TopF int
	// Epsilon is the exploration slice: this fraction of confident
	// routes floods anyway (at full TTL), so the index keeps seeing
	// answers from neighbors it would otherwise stop trying. Default
	// 0.1; negative disables exploration entirely.
	Epsilon float64
	// MinScore is the confidence threshold: when the summed decayed
	// score across all candidate neighbors is below it, the plan falls
	// back to a full flood. Default 1.0.
	MinScore float64
	// MaxTerms bounds how many distinct term fingerprints the index
	// tracks; the least recently observed term is dropped on overflow.
	// Default 4096.
	MaxTerms int
	// Seed seeds the exploration RNG, for reproducible simulations.
	// Zero uses a fixed default.
	Seed int64
}

func (o RouteOptions) withDefaults() RouteOptions {
	if o.HalfLife <= 0 {
		o.HalfLife = 5 * time.Minute
	}
	if o.TopF <= 0 {
		o.TopF = 2
	}
	if o.Epsilon < 0 {
		o.Epsilon = 0
	} else if o.Epsilon == 0 {
		o.Epsilon = 0.1
	}
	if o.MinScore <= 0 {
		o.MinScore = 1.0
	}
	if o.MaxTerms <= 0 {
		o.MaxTerms = 4096
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// decayed is an exponentially-decayed accumulator: value() halves every
// HalfLife without updates.
type decayed struct {
	v  float64
	at time.Time
}

func (d *decayed) value(now time.Time, halfLife time.Duration) float64 {
	if d.at.IsZero() || d.v == 0 {
		return 0
	}
	age := now.Sub(d.at)
	if age <= 0 {
		return d.v
	}
	return d.v * math.Exp2(-float64(age)/float64(halfLife))
}

func (d *decayed) add(x float64, now time.Time, halfLife time.Duration) {
	d.v = d.value(now, halfLife) + x
	d.at = now
}

// termStats is everything the index has learned about one query term.
type termStats struct {
	vias map[string]*decayed // first-hop neighbor -> decayed answer count
	hops decayed             // decayed max answer depth, for TTL scoping
	seen time.Time           // last observation, for term eviction
}

// RoutingIndex learns, per query-term fingerprint, which first-hop
// neighbors produce answers and how deep those answers sit. The query
// path asks it for a Plan: either a confident selective route (top-f
// neighbors, TTL scoped to the learned answer depth plus slack) or a
// full flood when confidence is low. Safe for concurrent use.
type RoutingIndex struct {
	mu    sync.Mutex
	opt   RouteOptions
	terms map[string]*termStats
	rng   *rand.Rand
}

// NewRoutingIndex returns an empty index.
func NewRoutingIndex(opt RouteOptions) *RoutingIndex {
	opt = opt.withDefaults()
	return &RoutingIndex{
		opt:   opt,
		terms: make(map[string]*termStats),
		rng:   rand.New(rand.NewSource(opt.Seed)),
	}
}

// Observe credits via — the base's first-hop neighbor an answer batch
// travelled through — with answers hits for each query term, and records
// the depth the batch was produced at.
func (x *RoutingIndex) Observe(terms []string, via string, answers, hops int, now time.Time) {
	if via == "" || answers <= 0 || len(terms) == 0 {
		return
	}
	x.mu.Lock()
	defer x.mu.Unlock()
	for _, t := range terms {
		ts := x.terms[t]
		if ts == nil {
			x.evictTermLocked()
			ts = &termStats{vias: make(map[string]*decayed)}
			x.terms[t] = ts
		}
		ts.seen = now
		d := ts.vias[via]
		if d == nil {
			d = &decayed{}
			ts.vias[via] = d
		}
		d.add(float64(answers), now, x.opt.HalfLife)
		if h := float64(hops); h > ts.hops.value(now, x.opt.HalfLife) {
			ts.hops.v, ts.hops.at = h, now
		}
	}
}

// evictTermLocked drops the least recently observed term when the index
// is at capacity; callers hold x.mu.
func (x *RoutingIndex) evictTermLocked() {
	if len(x.terms) < x.opt.MaxTerms {
		return
	}
	var oldest string
	var oldestAt time.Time
	for t, ts := range x.terms {
		if oldest == "" || ts.seen.Before(oldestAt) {
			oldest, oldestAt = t, ts.seen
		}
	}
	delete(x.terms, oldest)
}

// Plan is a routing decision for one fan-out.
type Plan struct {
	// Targets is the subset of candidate neighbors to forward to. On a
	// flood it is every candidate.
	Targets []string
	// TTL is the hop budget to send with; selective plans scope it to
	// the learned answer depth plus one hop of slack.
	TTL uint8
	// Selective reports whether the plan prunes the flood.
	Selective bool
	// Explored reports an ε-exploration flood: confidence was high but
	// the index chose to flood anyway to keep learning.
	Explored bool
}

// Select plans a fan-out to neighbors for a query with the given terms
// and default TTL. Low confidence — an unknown term mix, decayed history
// or no scored neighbor among the candidates — falls back to a full
// flood, so selective routing can only ever save traffic, not recall.
func (x *RoutingIndex) Select(terms []string, neighbors []string, ttl uint8, now time.Time) Plan {
	flood := Plan{Targets: neighbors, TTL: ttl}
	if len(terms) == 0 || len(neighbors) == 0 {
		return flood
	}
	x.mu.Lock()
	defer x.mu.Unlock()
	scores := make(map[string]float64)
	total, maxHops := 0.0, 0.0
	for _, t := range terms {
		ts := x.terms[t]
		if ts == nil {
			continue
		}
		for _, nb := range neighbors {
			if d := ts.vias[nb]; d != nil {
				v := d.value(now, x.opt.HalfLife)
				scores[nb] += v
				total += v
			}
		}
		if h := ts.hops.value(now, x.opt.HalfLife); h > maxHops {
			maxHops = h
		}
	}
	if total < x.opt.MinScore || len(scores) == 0 {
		return flood
	}
	if x.rng.Float64() < x.opt.Epsilon {
		flood.Explored = true
		return flood
	}
	ranked := make([]string, 0, len(scores))
	for nb := range scores {
		ranked = append(ranked, nb)
	}
	sort.Slice(ranked, func(i, j int) bool {
		if scores[ranked[i]] != scores[ranked[j]] {
			return scores[ranked[i]] > scores[ranked[j]]
		}
		return ranked[i] < ranked[j]
	})
	if len(ranked) > x.opt.TopF {
		ranked = ranked[:x.opt.TopF]
	}
	selTTL := ttl
	if maxHops > 0 {
		need := uint64(math.Ceil(maxHops)) + 1 // one hop of slack
		if need < uint64(selTTL) {
			selTTL = uint8(need)
		}
	}
	return Plan{Targets: ranked, TTL: selTTL, Selective: true}
}

// Terms returns how many term fingerprints the index currently tracks.
func (x *RoutingIndex) Terms() int {
	x.mu.Lock()
	defer x.mu.Unlock()
	return len(x.terms)
}

// Forget removes every learned counter attributed to neighbor across all
// terms — called when the neighbor departs or is dropped as dead, so a
// long-lived node under churn does not accumulate unbounded dead-neighbor
// state. Terms left with no scored neighbor are dropped entirely. It
// returns how many per-term counters were evicted.
func (x *RoutingIndex) Forget(neighbor string) int {
	if neighbor == "" {
		return 0
	}
	x.mu.Lock()
	defer x.mu.Unlock()
	dropped := 0
	for t, ts := range x.terms {
		if _, ok := ts.vias[neighbor]; !ok {
			continue
		}
		delete(ts.vias, neighbor)
		dropped++
		if len(ts.vias) == 0 {
			delete(x.terms, t)
		}
	}
	return dropped
}
