package observatory

import (
	"fmt"
	"path/filepath"
	"testing"
	"time"

	"bestpeer/internal/agent"
	"bestpeer/internal/core"
	"bestpeer/internal/obs"
	"bestpeer/internal/storm"
	"bestpeer/internal/transport"
)

func TestTimelineFolding(t *testing.T) {
	events := []obs.Event{
		{Kind: obs.EvQueryIssued, Query: "q1", Strategy: "maxcount", Count: 3, Hops: 7},
		{Kind: obs.EvAgentAnswered, Query: "q1", Peer: "n2", Hops: 3, Count: 4},
		{Kind: obs.EvAgentAnswered, Query: "q1", Peer: "n3", Hops: 1, Count: 1},
		{Kind: obs.EvQueryCompleted, Query: "q1", Count: 5},
		{Kind: obs.EvReconfigured, Query: "q1", Strategy: "maxcount", K: 8, Count: 1,
			Scores: []obs.PeerScore{{Addr: "n2", Answers: 4, Rank: 1, Selected: true}}},
		{Kind: obs.EvPeerAdded, Query: "q1", Peer: "n2", Reason: "reconfig"},
		{Kind: obs.EvPeerDropped, Peer: "n9", Reason: "unresponsive"}, // no query: latest round
		// An answered event for a query whose issued event was evicted.
		{Kind: obs.EvAgentAnswered, Query: "lost", Peer: "nx", Hops: 5, Count: 2},
		{Kind: obs.EvQueryIssued, Query: "q2", Strategy: "maxcount", Count: 4},
		{Kind: obs.EvAgentAnswered, Query: "q2", Peer: "n2", Hops: 1, Count: 5},
	}
	rounds := Timeline(events)
	if len(rounds) != 2 {
		t.Fatalf("folded %d rounds, want 2", len(rounds))
	}
	r1 := rounds[0]
	if r1.Query != "q1" || r1.FanOut != 3 || r1.Answers != 5 || r1.AnswerBatches != 2 {
		t.Fatalf("round 1 = %+v", r1)
	}
	// Weighted mean: (4*3 + 1*1) / 5 = 2.6; max 3.
	if r1.MeanAnswerHops != 2.6 || r1.MaxAnswerHops != 3 {
		t.Fatalf("round 1 hops = %v max %d, want 2.6 max 3", r1.MeanAnswerHops, r1.MaxAnswerHops)
	}
	if len(r1.PeersAdded) != 1 || r1.PeersAdded[0] != "n2" ||
		len(r1.PeersDropped) != 1 || r1.PeersDropped[0] != "n9" || r1.EditDistance != 2 {
		t.Fatalf("round 1 edits = %+v", r1)
	}
	if len(r1.Scores) != 1 || !r1.Scores[0].Selected {
		t.Fatalf("round 1 rationale = %+v", r1.Scores)
	}
	r2 := rounds[1]
	if r2.Query != "q2" || r2.MeanAnswerHops != 1 || r2.EditDistance != 0 {
		t.Fatalf("round 2 = %+v", r2)
	}
	if trend := MeanHopsTrend(rounds); trend[0] <= trend[1] {
		t.Fatalf("trend = %v, want decreasing", trend)
	}
}

// fleet boots n connected nodes over the given network, each serving its
// admin endpoint on loopback TCP, and returns the nodes plus their admin
// addresses. Every node's store holds one object matching "music".
func fleet(t *testing.T, nw transport.Network, n int, capacity int) ([]*core.Node, []string) {
	t.Helper()
	nodes := make([]*core.Node, n)
	admins := make([]string, n)
	for i := 0; i < n; i++ {
		st, err := storm.Open(filepath.Join(t.TempDir(), fmt.Sprintf("n%d.storm", i)), storm.Options{})
		if err != nil {
			t.Fatal(err)
		}
		st.Put(&storm.Object{
			Name:     fmt.Sprintf("music-%d", i),
			Keywords: []string{"music"},
			Data:     []byte{byte(i)},
		})
		node, err := core.NewNode(core.Config{
			Network:         nw,
			ListenAddr:      fmt.Sprintf("node-%d", i),
			Store:           st,
			MaxPeers:        8,
			JournalCapacity: capacity,
		})
		if err != nil {
			t.Fatal(err)
		}
		srv, err := node.ServeAdmin("")
		if err != nil {
			t.Fatal(err)
		}
		nodes[i] = node
		admins[i] = srv.Addr()
		t.Cleanup(func() {
			node.Close()
			st.Close()
		})
	}
	return nodes, admins
}

func TestFleetScrapeAndTraceAssembly(t *testing.T) {
	nw := transport.NewInProc()
	nodes, admins := fleet(t, nw, 3, 0)
	// Line: 0—1—2, so node 2 answers from two hops out.
	nodes[0].SetPeers([]core.Peer{{Addr: nodes[1].Addr()}})
	nodes[1].SetPeers([]core.Peer{{Addr: nodes[0].Addr()}, {Addr: nodes[2].Addr()}})
	nodes[2].SetPeers([]core.Peer{{Addr: nodes[1].Addr()}})

	res, err := nodes[0].Query(&agent.KeywordAgent{Query: "music"}, core.QueryOptions{
		Timeout: 2 * time.Second, WaitAnswers: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Answers) < 3 {
		t.Fatalf("query got %d answers, want 3", len(res.Answers))
	}

	c := NewCollector(admins...)
	snap := c.Scrape()
	if len(snap.Nodes) != 3 {
		t.Fatalf("snapshot has %d nodes", len(snap.Nodes))
	}
	for _, v := range snap.Nodes {
		if v.Err != "" {
			t.Fatalf("member %s scrape error: %s", v.Admin, v.Err)
		}
		if v.Metrics == nil || v.Health == nil {
			t.Fatalf("member %s missing metrics/health", v.Admin)
		}
	}
	// Topology reconstructed from /peers must match each node exactly.
	topo := snap.Topology()
	for i, n := range nodes {
		want := n.PeerAddrs()
		got := topo[n.Addr()]
		if len(got) != len(want) {
			t.Fatalf("node %d topology = %v, want %v", i, got, want)
		}
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("node %d topology = %v, want %v", i, got, want)
			}
		}
	}

	// The fleet timeline contains the query with answers from 2 hops.
	rounds := snap.Rounds()
	if len(rounds) != 1 || rounds[0].Query != res.ID.String() {
		t.Fatalf("rounds = %+v", rounds)
	}
	// The base's local hit is not an agent batch, so the round records
	// the two remote answers, the farthest from two hops out.
	if rounds[0].Answers < 2 || rounds[0].MaxAnswerHops != 2 {
		t.Fatalf("round = %+v, want >=2 remote answers reaching hop 2", rounds[0])
	}

	// Cross-node trace assembly: the base's spans plus node 1's
	// journalled forward of the agent toward node 2.
	ft := c.AssembleTrace(res.ID.String())
	if ft.Base != nodes[0].Addr() {
		t.Fatalf("trace base = %q, want %s", ft.Base, nodes[0].Addr())
	}
	if len(ft.Spans) == 0 || len(ft.Events) == 0 {
		t.Fatalf("trace empty: %+v", ft)
	}
	seen := make(map[string]bool)
	for _, s := range ft.Spans {
		seen[s.Peer] = true
	}
	for _, n := range nodes {
		if !seen[n.Addr()] {
			t.Fatalf("trace is missing node %s: %+v", n.Addr(), ft.Spans)
		}
	}

	// Cursor persistence: a second scrape returns no duplicate events.
	before := len(snap.Events)
	snap2 := c.Scrape()
	for _, e := range snap2.Events[:before] {
		_ = e
	}
	if dup := countQueryIssued(snap2.Events, res.ID.String()); dup != 1 {
		t.Fatalf("query-issued appears %d times after rescrape, want 1", dup)
	}
}

func countQueryIssued(events []obs.Event, q string) int {
	n := 0
	for _, e := range events {
		if e.Kind == obs.EvQueryIssued && e.Query == q {
			n++
		}
	}
	return n
}

func TestObservatoryServerEndpoints(t *testing.T) {
	nw := transport.NewInProc()
	nodes, admins := fleet(t, nw, 2, 0)
	nodes[0].SetPeers([]core.Peer{{Addr: nodes[1].Addr()}})
	nodes[1].SetPeers([]core.Peer{{Addr: nodes[0].Addr()}})
	if _, err := nodes[0].Query(&agent.KeywordAgent{Query: "music"}, core.QueryOptions{
		Timeout: time.Second, WaitAnswers: 2,
	}); err != nil {
		t.Fatal(err)
	}

	srv, err := StartServer("", NewCollector(admins...))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	var snap FleetSnapshot
	if err := NewCollector().getJSON(srv.Addr(), "/fleet", &snap); err != nil {
		t.Fatal(err)
	}
	if len(snap.Nodes) != 2 || len(snap.Events) == 0 {
		t.Fatalf("/fleet = %d nodes, %d events", len(snap.Nodes), len(snap.Events))
	}
	var topo map[string][]string
	if err := NewCollector().getJSON(srv.Addr(), "/fleet/topology", &topo); err != nil {
		t.Fatal(err)
	}
	if len(topo[nodes[0].Addr()]) != 1 || topo[nodes[0].Addr()][0] != nodes[1].Addr() {
		t.Fatalf("/fleet/topology = %v", topo)
	}
	var rounds []Round
	if err := NewCollector().getJSON(srv.Addr(), "/fleet/convergence", &rounds); err != nil {
		t.Fatal(err)
	}
	if len(rounds) != 1 {
		t.Fatalf("/fleet/convergence = %+v", rounds)
	}
}
