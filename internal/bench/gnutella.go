package bench

import (
	"sort"
	"time"

	"bestpeer/internal/netsim"
	"bestpeer/internal/topology"
	"bestpeer/internal/wire"
)

// gnuSim models a Gnutella 0.4 network: fixed peers, query flooding with
// duplicate suppression, and QueryHits routed back along the reverse of
// the query path hop by hop. Hits carry file-name lists only (the
// protocol never returns file data in-band), which matches the Fig. 8
// configuration where BestPeer also returns name lists.
type gnuSim struct {
	p   Params
	tp  *topology.Topology
	sim *netsim.Sim
	net *netsim.Network

	route   []int // upstream hop for the current query (-1 unseen)
	events  []Event
	started time.Duration
}

func newGnuSim(tp *topology.Topology, p Params) *gnuSim {
	p = p.withDefaults()
	p.IncludeData = false // Gnutella hits are always name lists
	s := netsim.NewSim()
	net := netsim.NewNetwork(s, netsim.Link{Latency: p.Cost.Latency, Bandwidth: p.Cost.Bandwidth})
	net.UseSharedMedium()
	g := &gnuSim{
		p: p, tp: tp, sim: s, net: net,
		route: make([]int, tp.N),
	}
	for i := 0; i < tp.N; i++ {
		i := i
		h := net.AddHost(nodeAddr(i), netsim.HostConfig{Threads: p.Threads})
		h.SetHandler(func(env *wire.Envelope) { g.handle(i, env) })
	}
	return g
}

func (g *gnuSim) handle(node int, env *wire.Envelope) {
	switch env.Kind {
	case wire.KindGnuQuery:
		g.handleQuery(node, env)
	case wire.KindGnuQueryHit:
		g.handleHit(node, env)
	}
}

func (g *gnuSim) handleQuery(node int, env *wire.Envelope) {
	if env.Expired() {
		return // TTL exhausted: drop the descriptor
	}
	if g.route[node] != -1 {
		return // duplicate descriptor
	}
	up := nodeFromEnvAddr(env.From)
	g.route[node] = up

	// Flood onward; descriptor routing costs servant CPU per hop.
	var targets []int
	for _, w := range g.tp.Peers(node) {
		if w != up {
			targets = append(targets, w)
		}
	}
	if len(targets) > 0 && env.TTL > 1 {
		host := g.net.Host(nodeAddr(node))
		host.Exec(g.p.Cost.ForwardCost, func() {
			for _, w := range targets {
				fwd := env.Forwarded(nodeAddr(node), nodeAddr(w))
				g.net.Send(nodeAddr(node), nodeAddr(w), fwd, g.p.Cost.compressed(g.p.Cost.QuerySize))
			}
		})
	}

	// Execute the search (query-shipping: cheap startup).
	host := g.net.Host(nodeAddr(node))
	host.Exec(g.p.Cost.QueryStartup+g.p.Cost.scanCost(g.p.Spec.ObjectsPerNode), func() {
		hits := g.p.Spec.MatchCount(node, g.p.Query)
		if hits == 0 {
			return
		}
		size := g.p.Cost.resultSize(hits, g.p.Spec.ObjectSize, false)
		g.sendHit(node, up, hits, node, int(env.Hops), size)
	})
}

func (g *gnuSim) sendHit(node, to, hits, origin, hops, size int) {
	env := &wire.Envelope{
		Kind: wire.KindGnuQueryHit, ID: wire.NewMsgID(), TTL: 1,
		Hops: uint8(clampHops(hops)),
		From: nodeAddr(node), To: nodeAddr(to), Body: resultBody(hits, origin),
	}
	g.net.Send(nodeAddr(node), nodeAddr(to), env, size)
}

// handleHit relays a QueryHit one hop toward the initiator, or records it.
func (g *gnuSim) handleHit(node int, env *wire.Envelope) {
	hits, origin := resultFromBody(env.Body)
	if node == g.tp.Base {
		g.events = append(g.events, Event{
			Node: origin, Answers: hits, Hops: int(env.Hops),
			At: g.sim.Now() - g.started,
		})
		return
	}
	up := g.route[node]
	if up == -1 {
		return
	}
	size := g.p.Cost.resultSize(hits, g.p.Spec.ObjectSize, false)
	host := g.net.Host(nodeAddr(node))
	host.Exec(g.p.Cost.GnuRelay, func() {
		g.sendHit(node, up, hits, origin, int(env.Hops), size)
	})
}

func (g *gnuSim) runRound() RunResult {
	for i := range g.route {
		g.route[i] = -1
	}
	g.route[g.tp.Base] = g.tp.Base
	g.events = nil
	g.started = g.sim.Now()
	msgs0, bytes0, sent0 := g.net.MsgsDelivered, g.net.BytesDelivered, g.net.MsgsSent

	for _, w := range g.tp.Peers(g.tp.Base) {
		env := &wire.Envelope{
			Kind: wire.KindGnuQuery, ID: wire.NewMsgID(),
			TTL: uint8(clampHops(g.p.TTL)), Hops: 1,
			From: nodeAddr(g.tp.Base), To: nodeAddr(w),
		}
		g.net.Send(nodeAddr(g.tp.Base), nodeAddr(w), env, g.p.Cost.compressed(g.p.Cost.QuerySize))
	}
	g.sim.Run()

	res := RunResult{
		Events:   append([]Event(nil), g.events...),
		Msgs:     g.net.MsgsDelivered - msgs0,
		Bytes:    g.net.BytesDelivered - bytes0,
		MsgsSent: g.net.MsgsSent - sent0,
		Route:    "flood",
	}
	for _, e := range res.Events {
		res.TotalAnswers += e.Answers
		if e.At > res.Completion {
			res.Completion = e.At
		}
	}
	sort.Slice(res.Events, func(i, j int) bool { return res.Events[i].At < res.Events[j].At })
	return res
}

// RunGnutella executes `rounds` repetitions of the query. The peer set is
// fixed, so every round traverses the same path — the property the paper
// contrasts with BestPeer's reconfiguration.
func RunGnutella(tp *topology.Topology, p Params, rounds int) []RunResult {
	g := newGnuSim(tp, p)
	out := make([]RunResult, 0, rounds)
	for r := 0; r < rounds; r++ {
		out = append(out, g.runRound())
	}
	return out
}
