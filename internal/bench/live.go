package bench

import (
	"fmt"
	"os"
	"path/filepath"
	"time"

	"bestpeer/internal/agent"
	"bestpeer/internal/core"
	"bestpeer/internal/reconfig"
	"bestpeer/internal/storm"
	"bestpeer/internal/topology"
	"bestpeer/internal/transport"
	"bestpeer/internal/workload"
)

// LiveResult is one query round executed on the real (in-process) stack
// rather than the simulator.
type LiveResult struct {
	// Completion is the wall-clock time of the last answer.
	Completion time.Duration
	// TotalAnswers counts the results received.
	TotalAnswers int
	// AgentsForwarded sums, over all nodes, the clone-forwards performed
	// during the round — a load metric independent of wall-clock noise.
	AgentsForwarded uint64
	// MaxHops is the largest hop count among the answers.
	MaxHops int
}

// LiveCluster is a real BestPeer network running in-process, used to
// validate the simulator's qualitative behaviour against the actual
// implementation.
type LiveCluster struct {
	dir   string
	nodes []*core.Node
	store []*storm.Store
	base  int
	query string
	spec  *workload.Spec
}

// NewLiveCluster builds and wires a live network over tp. Each node's
// store is populated from spec (use a small ObjectsPerNode — this is the
// real storage engine).
func NewLiveCluster(tp *topology.Topology, spec *workload.Spec, query string, strategy reconfig.Strategy, maxPeers int) (*LiveCluster, error) {
	dir, err := os.MkdirTemp("", "bestpeer-live")
	if err != nil {
		return nil, err
	}
	lc := &LiveCluster{dir: dir, base: tp.Base, query: query, spec: spec}
	nw := transport.NewInProc()
	for i := 0; i < tp.N; i++ {
		st, err := storm.Open(filepath.Join(dir, fmt.Sprintf("n%d.storm", i)), storm.Options{})
		if err != nil {
			lc.Close()
			return nil, err
		}
		if err := spec.Populate(i, st); err != nil {
			_ = st.Close() // already failing; the populate error wins
			lc.Close()
			return nil, err
		}
		node, err := core.NewNode(core.Config{
			Network:    nw,
			ListenAddr: fmt.Sprintf("live-%d", i),
			Store:      st,
			MaxPeers:   maxPeers,
			DefaultTTL: 64,
			Strategy:   strategy,
		})
		if err != nil {
			_ = st.Close() // already failing; the node error wins
			lc.Close()
			return nil, err
		}
		lc.nodes = append(lc.nodes, node)
		lc.store = append(lc.store, st)
	}
	for i, node := range lc.nodes {
		var peers []core.Peer
		for _, j := range tp.Peers(i) {
			peers = append(peers, core.Peer{Addr: lc.nodes[j].Addr()})
		}
		node.SetPeers(peers)
	}
	return lc, nil
}

// Base returns the query-issuing node.
func (lc *LiveCluster) Base() *core.Node { return lc.nodes[lc.base] }

// RunRound issues the cluster's query once from the base and waits for
// the expected number of answers (or the timeout).
func (lc *LiveCluster) RunRound(timeout time.Duration) (LiveResult, error) {
	expected := 0
	for i := range lc.nodes {
		if i != lc.base {
			expected += lc.spec.MatchCount(i, lc.query)
		}
	}
	var before uint64
	for _, n := range lc.nodes {
		before += n.Stats().AgentsForwarded
	}
	res, err := lc.Base().Query(&agent.KeywordAgent{Query: lc.query}, core.QueryOptions{
		Timeout:     timeout,
		WaitAnswers: expected,
		SkipLocal:   true,
	})
	if err != nil {
		return LiveResult{}, err
	}
	var after uint64
	for _, n := range lc.nodes {
		after += n.Stats().AgentsForwarded
	}
	out := LiveResult{TotalAnswers: len(res.Answers), AgentsForwarded: after - before}
	for _, a := range res.Answers {
		if a.At > out.Completion {
			out.Completion = a.At
		}
		if a.Hops > out.MaxHops {
			out.MaxHops = a.Hops
		}
	}
	return out, nil
}

// Close shuts the cluster down and removes its on-disk state.
func (lc *LiveCluster) Close() {
	for _, n := range lc.nodes {
		_ = n.Close() // teardown is best-effort; nothing to report to
	}
	for _, s := range lc.store {
		_ = s.Close() // teardown is best-effort; the dir is removed anyway
	}
	os.RemoveAll(lc.dir)
}
