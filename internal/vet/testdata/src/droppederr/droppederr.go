// Package droppederr is a bpvet golden-test fixture.
package droppederr

type conn struct{}

func (conn) Send(b []byte) error         { return nil }
func (conn) Write(b []byte) (int, error) { return 0, nil }
func (conn) Close() error                { return nil }

func badBare(c conn) {
	c.Send(nil) // want `Send error result discarded`
	c.Close()   // want `Close error result discarded`
}

func badSilentBlank(c conn) {
	_ = c.Send(nil) // want `Send error discarded without explanation`

	_, _ = c.Write(nil) // want `Write error discarded without explanation`
}

func goodExplained(c conn) {
	_ = c.Send(nil) // best-effort: receiver repair happens elsewhere

	// best-effort cleanup on the error path
	_ = c.Close()
}

func goodDeferred(c conn) {
	defer c.Close()
}

func goodHandled(c conn) error {
	if err := c.Send(nil); err != nil {
		return err
	}
	_, err := c.Write(nil)
	return err
}

type notErr struct{}

func (notErr) Close() int { return 0 }

// Close here does not return an error, so the rule does not apply.
func goodNotError(n notErr) {
	n.Close()
}
