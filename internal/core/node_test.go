package core

import (
	"fmt"
	"path/filepath"
	"testing"
	"time"

	"bestpeer/internal/agent"
	"bestpeer/internal/liglo"
	"bestpeer/internal/reconfig"
	"bestpeer/internal/storm"
	"bestpeer/internal/topology"
	"bestpeer/internal/transport"
	"bestpeer/internal/wire"
)

// cluster is a set of live nodes on one in-process network.
type cluster struct {
	nw    *transport.InProc
	nodes []*Node
}

// newCluster starts n nodes. seedFn populates node i's store; nil gives
// each node one object "obj-<i>" with keyword "kw<i>".
func newCluster(t *testing.T, n int, mutate func(i int, cfg *Config), seedFn func(i int, s *storm.Store)) *cluster {
	t.Helper()
	c := &cluster{nw: transport.NewInProc()}
	for i := 0; i < n; i++ {
		st, err := storm.Open(filepath.Join(t.TempDir(), fmt.Sprintf("n%d.storm", i)), storm.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if seedFn != nil {
			seedFn(i, st)
		} else {
			st.Put(&storm.Object{
				Name:     fmt.Sprintf("obj-%d", i),
				Keywords: []string{fmt.Sprintf("kw%d", i)},
				Data:     []byte(fmt.Sprintf("data-of-node-%d", i)),
			})
		}
		cfg := Config{
			Network:    c.nw,
			ListenAddr: fmt.Sprintf("node-%d", i),
			Store:      st,
			MaxPeers:   8,
		}
		if mutate != nil {
			mutate(i, &cfg)
		}
		node, err := NewNode(cfg)
		if err != nil {
			t.Fatal(err)
		}
		c.nodes = append(c.nodes, node)
		store := st
		t.Cleanup(func() { node.Close(); store.Close() })
	}
	return c
}

// wire applies a topology: node i's direct peers are the topology's
// adjacency.
func (c *cluster) wire(tp *topology.Topology) {
	for i, node := range c.nodes {
		var peers []Peer
		for _, j := range tp.Peers(i) {
			peers = append(peers, Peer{Addr: c.nodes[j].Addr()})
		}
		node.SetPeers(peers)
	}
}

func collectNames(answers []Answer) map[string]bool {
	out := make(map[string]bool)
	for _, a := range answers {
		out[a.Result.Name] = true
	}
	return out
}

func TestQueryStarReachesAllNodes(t *testing.T) {
	// Every node holds an object matching "music"; the base must get one
	// answer per node.
	c := newCluster(t, 6, nil, func(i int, s *storm.Store) {
		s.Put(&storm.Object{
			Name:     fmt.Sprintf("music-%d", i),
			Keywords: []string{"music"},
			Data:     []byte{byte(i)},
		})
	})
	c.wire(topology.Star(6))

	res, err := c.nodes[0].Query(&agent.KeywordAgent{Query: "music"}, QueryOptions{
		Timeout: 2 * time.Second, WaitAnswers: 6,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Answers) != 6 {
		t.Fatalf("answers = %d, want 6 (%v)", len(res.Answers), collectNames(res.Answers))
	}
	names := collectNames(res.Answers)
	for i := 0; i < 6; i++ {
		if !names[fmt.Sprintf("music-%d", i)] {
			t.Fatalf("missing answer from node %d: %v", i, names)
		}
	}
}

func TestQueryLinePropagatesByForwarding(t *testing.T) {
	const n = 5
	c := newCluster(t, n, nil, func(i int, s *storm.Store) {
		s.Put(&storm.Object{Name: fmt.Sprintf("deep-%d", i), Keywords: []string{"deep"}})
	})
	c.wire(topology.Line(n))

	res, err := c.nodes[0].Query(&agent.KeywordAgent{Query: "deep"}, QueryOptions{
		Timeout: 2 * time.Second, WaitAnswers: n, NoReconfigure: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Answers) != n {
		t.Fatalf("answers = %d, want %d", len(res.Answers), n)
	}
	// The far end of the line answered with the right hop count.
	for _, a := range res.Answers {
		if a.Result.Name == fmt.Sprintf("deep-%d", n-1) && a.Hops != n-1 {
			t.Fatalf("far answer hops = %d, want %d", a.Hops, n-1)
		}
	}
}

func TestTTLBoundsPropagation(t *testing.T) {
	const n = 6
	c := newCluster(t, n, nil, func(i int, s *storm.Store) {
		s.Put(&storm.Object{Name: fmt.Sprintf("x-%d", i), Keywords: []string{"x"}})
	})
	c.wire(topology.Line(n))

	// TTL 2: agent reaches nodes 1 (hop 1) and 2 (hop 2) only; plus local.
	res, err := c.nodes[0].Query(&agent.KeywordAgent{Query: "x"}, QueryOptions{
		TTL: 2, Timeout: 700 * time.Millisecond, NoReconfigure: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	names := collectNames(res.Answers)
	if !names["x-0"] || !names["x-1"] || !names["x-2"] {
		t.Fatalf("near answers missing: %v", names)
	}
	if names["x-3"] || names["x-4"] || names["x-5"] {
		t.Fatalf("TTL leak: %v", names)
	}
}

func TestDuplicateAgentsDropped(t *testing.T) {
	// A triangle: node 0 connected to 1 and 2, which are also connected.
	// Each of 1 and 2 receives the agent twice (direct + via the other);
	// answers must not be duplicated.
	c := newCluster(t, 3, nil, func(i int, s *storm.Store) {
		s.Put(&storm.Object{Name: fmt.Sprintf("t-%d", i), Keywords: []string{"t"}})
	})
	for i, node := range c.nodes {
		var peers []Peer
		for j := range c.nodes {
			if j != i {
				peers = append(peers, Peer{Addr: c.nodes[j].Addr()})
			}
		}
		node.SetPeers(peers)
	}
	res, err := c.nodes[0].Query(&agent.KeywordAgent{Query: "t"}, QueryOptions{
		Timeout: 700 * time.Millisecond, NoReconfigure: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Answers) != 3 {
		t.Fatalf("answers = %d, want exactly 3 (dup suppression)", len(res.Answers))
	}
	stats1 := c.nodes[1].Stats()
	stats2 := c.nodes[2].Stats()
	if stats1.DuplicatesDropped+stats2.DuplicatesDropped == 0 {
		t.Fatal("no duplicates were dropped in a cyclic topology")
	}
	if stats1.AgentsExecuted != 1 || stats2.AgentsExecuted != 1 {
		t.Fatalf("agents executed more than once: %d, %d",
			stats1.AgentsExecuted, stats2.AgentsExecuted)
	}
}

func TestAnswersReturnDirectlyNotAlongPath(t *testing.T) {
	// In a 4-node line, node 3's answer must arrive at node 0 without
	// increasing nodes 1/2's sent-answer counters.
	c := newCluster(t, 4, nil, func(i int, s *storm.Store) {
		if i == 3 {
			s.Put(&storm.Object{Name: "treasure", Keywords: []string{"gold"}})
		} else {
			s.Put(&storm.Object{Name: fmt.Sprintf("junk-%d", i), Keywords: []string{"junk"}})
		}
	})
	c.wire(topology.Line(4))

	res, err := c.nodes[0].Query(&agent.KeywordAgent{Query: "gold"}, QueryOptions{
		Timeout: 2 * time.Second, WaitAnswers: 1, NoReconfigure: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Answers) != 1 || res.Answers[0].Result.Name != "treasure" {
		t.Fatalf("answers = %+v", res.Answers)
	}
	if res.Answers[0].PeerAddr != c.nodes[3].Addr() {
		t.Fatalf("answer attributed to %s", res.Answers[0].PeerAddr)
	}
	// Intermediate nodes forwarded the agent but sent no answers.
	for _, i := range []int{1, 2} {
		st := c.nodes[i].Stats()
		if st.AnswersSent != 0 {
			t.Fatalf("node %d relayed answers (AnswersSent=%d)", i, st.AnswersSent)
		}
		if st.AgentsForwarded == 0 {
			t.Fatalf("node %d did not forward the agent", i)
		}
	}
}

func TestReconfigurationPromotesAnswerProvider(t *testing.T) {
	// Line 0-1-2: node 2 has the goods. With MaxCount and a budget of 2,
	// node 0 should promote node 2 to a direct peer after the first
	// query, so the second query reaches it in one hop.
	c := newCluster(t, 3, func(i int, cfg *Config) {
		cfg.MaxPeers = 2
		cfg.Strategy = reconfig.MaxCount{}
	}, func(i int, s *storm.Store) {
		if i == 2 {
			s.Put(&storm.Object{Name: "hit", Keywords: []string{"want"}})
		} else {
			s.Put(&storm.Object{Name: fmt.Sprintf("miss-%d", i), Keywords: []string{"other"}})
		}
	})
	c.wire(topology.Line(3))

	res, err := c.nodes[0].Query(&agent.KeywordAgent{Query: "want"}, QueryOptions{
		Timeout: 2 * time.Second, WaitAnswers: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Answers) != 1 {
		t.Fatalf("answers = %d", len(res.Answers))
	}
	if !res.Reconfigured {
		t.Fatal("peer set did not change")
	}
	peers := c.nodes[0].PeerAddrs()
	if len(peers) != 2 {
		t.Fatalf("peers after reconfig = %v, want node 1 retained and node 2 added", peers)
	}
	found := false
	for _, p := range peers {
		if p == c.nodes[2].Addr() {
			found = true
		}
	}
	if !found {
		t.Fatalf("answer provider not promoted: %v", peers)
	}
	// The second query reaches the provider directly. Which copy of the
	// agent executes at node 2 — the direct one (hop 1) or the clone
	// relayed through node 1 (hop 2) — is a benign race, so to assert
	// the direct link deterministically, isolate it.
	c.nodes[0].SetPeers([]Peer{{Addr: c.nodes[2].Addr()}})
	res2, err := c.nodes[0].Query(&agent.KeywordAgent{Query: "want"}, QueryOptions{
		Timeout: 2 * time.Second, WaitAnswers: 1, NoReconfigure: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res2.Answers) != 1 || res2.Answers[0].Hops != 1 {
		t.Fatalf("post-reconfig answer hops = %+v", res2.Answers)
	}
}

func TestStaticStrategyNeverReconfigures(t *testing.T) {
	c := newCluster(t, 3, func(i int, cfg *Config) {
		cfg.Strategy = reconfig.Static{}
		cfg.MaxPeers = 1
	}, func(i int, s *storm.Store) {
		if i == 2 {
			s.Put(&storm.Object{Name: "hit", Keywords: []string{"want"}})
		}
	})
	c.wire(topology.Line(3))

	before := c.nodes[0].PeerAddrs()
	res, err := c.nodes[0].Query(&agent.KeywordAgent{Query: "want"}, QueryOptions{
		Timeout: 2 * time.Second, WaitAnswers: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Reconfigured {
		t.Fatal("static node reconfigured")
	}
	after := c.nodes[0].PeerAddrs()
	if len(before) != len(after) || before[0] != after[0] {
		t.Fatalf("peers changed: %v -> %v", before, after)
	}
}

func TestMode2HintsAndFetch(t *testing.T) {
	c := newCluster(t, 2, nil, func(i int, s *storm.Store) {
		if i == 1 {
			s.Put(&storm.Object{Name: "bigfile", Keywords: []string{"video"},
				Data: []byte("lots of bytes")})
		}
	})
	c.wire(topology.Line(2))

	res, err := c.nodes[0].Query(&agent.KeywordAgent{Query: "video"}, QueryOptions{
		Mode: 2, Timeout: 2 * time.Second, WaitAnswers: 1, NoReconfigure: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Answers) != 0 {
		t.Fatalf("mode 2 returned data: %+v", res.Answers)
	}
	if len(res.Hints) != 1 || res.Hints[0].Result.Name != "bigfile" || res.Hints[0].Result.Data != nil {
		t.Fatalf("hints = %+v", res.Hints)
	}
	// Follow-up fetch retrieves the data out-of-network.
	got, err := c.nodes[0].Fetch(res.Hints[0].PeerAddr, []string{"bigfile"}, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || string(got[0].Data) != "lots of bytes" {
		t.Fatalf("fetched = %+v", got)
	}
}

func TestFetchRemovedObjectReturnsEmpty(t *testing.T) {
	// §2: the target may have removed the content between hint and fetch.
	c := newCluster(t, 2, nil, func(i int, s *storm.Store) {
		if i == 1 {
			s.Put(&storm.Object{Name: "ghost", Keywords: []string{"g"}})
		}
	})
	c.wire(topology.Line(2))
	c.nodes[1].Store().Delete("ghost")
	got, err := c.nodes[0].Fetch(c.nodes[1].Addr(), []string{"ghost"}, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("fetched deleted object: %+v", got)
	}
}

func TestClassShippingOnColdPeer(t *testing.T) {
	c := newCluster(t, 2, func(i int, cfg *Config) {
		if i == 1 {
			reg := agent.NewRegistry()
			if err := agent.RegisterBuiltinsDormant(reg); err != nil {
				t.Fatal(err)
			}
			cfg.Registry = reg
		}
	}, func(i int, s *storm.Store) {
		if i == 1 {
			s.Put(&storm.Object{Name: "remote-hit", Keywords: []string{"kw"}})
		}
	})
	c.wire(topology.Line(2))

	res, err := c.nodes[0].Query(&agent.KeywordAgent{Query: "kw"}, QueryOptions{
		Timeout: 2 * time.Second, WaitAnswers: 1, NoReconfigure: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Answers) != 1 || res.Answers[0].Result.Name != "remote-hit" {
		t.Fatalf("cold peer answers = %+v", res.Answers)
	}
	if !c.nodes[1].Registry().Installed(agent.KeywordClass) {
		t.Fatal("class not installed after shipping")
	}
	if st := c.nodes[0].Stats(); st.ClassesShipped != 1 {
		t.Fatalf("origin ClassesShipped = %d", st.ClassesShipped)
	}
	if st := c.nodes[1].Stats(); st.ClassesInstalled != 1 {
		t.Fatalf("dest ClassesInstalled = %d", st.ClassesInstalled)
	}
	// Second query: class is cached, no new installs.
	if _, err := c.nodes[0].Query(&agent.KeywordAgent{Query: "kw"}, QueryOptions{
		Timeout: time.Second, WaitAnswers: 1, NoReconfigure: true,
	}); err != nil {
		t.Fatal(err)
	}
	if st := c.nodes[1].Stats(); st.ClassesInstalled != 1 {
		t.Fatalf("class re-installed: %d", st.ClassesInstalled)
	}
}

func TestFilterAgentAcrossNetwork(t *testing.T) {
	c := newCluster(t, 3, nil, func(i int, s *storm.Store) {
		s.Put(&storm.Object{Name: fmt.Sprintf("small-%d", i), Keywords: []string{"f"}, Data: []byte("xy")})
		s.Put(&storm.Object{Name: fmt.Sprintf("large-%d", i), Keywords: []string{"f"},
			Data: make([]byte, 600)})
	})
	c.wire(topology.Star(3))
	res, err := c.nodes[0].Query(&agent.FilterAgent{Expr: "keyword=f & size>500", IncludeData: false},
		QueryOptions{Timeout: 2 * time.Second, WaitAnswers: 3, NoReconfigure: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Answers) != 3 {
		t.Fatalf("answers = %d, want 3", len(res.Answers))
	}
	for _, a := range res.Answers {
		if a.Result.Name[:5] != "large" {
			t.Fatalf("filter leaked %s", a.Result.Name)
		}
	}
}

func TestAccessControlAcrossNetwork(t *testing.T) {
	seed := func(i int, s *storm.Store) {
		if i == 1 {
			s.Put(&storm.Object{
				Name: "salaries", Keywords: []string{"hr"},
				Kind: storm.ActiveObject, ActiveClass: "level-filter",
				Data: []byte("headcount 40\n!5 ceo 1000000"),
			})
		}
	}
	// Low-clearance base node.
	low := newCluster(t, 2, func(i int, cfg *Config) { cfg.AccessLevel = 0 }, seed)
	low.wire(topology.Line(2))
	res, err := low.nodes[0].Query(&agent.KeywordAgent{Query: "hr"}, QueryOptions{
		Timeout: 2 * time.Second, WaitAnswers: 1, NoReconfigure: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Answers) != 1 || string(res.Answers[0].Result.Data) != "headcount 40" {
		t.Fatalf("low-clearance saw %q", res.Answers[0].Result.Data)
	}

	// High-clearance base node.
	high := newCluster(t, 2, func(i int, cfg *Config) { cfg.AccessLevel = 9 }, seed)
	high.wire(topology.Line(2))
	res, err = high.nodes[0].Query(&agent.KeywordAgent{Query: "hr"}, QueryOptions{
		Timeout: 2 * time.Second, WaitAnswers: 1, NoReconfigure: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Answers) != 1 || string(res.Answers[0].Result.Data) != "headcount 40\nceo 1000000" {
		t.Fatalf("high-clearance saw %q", res.Answers[0].Result.Data)
	}
}

func TestJoinAndRejoinThroughLiglo(t *testing.T) {
	nw := transport.NewInProc()
	srv, err := liglo.NewServer(nw, "liglo-main", liglo.ServerConfig{InitialPeers: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	mk := func(addr string) *Node {
		st, err := storm.Open(filepath.Join(t.TempDir(), addr+".storm"), storm.Options{})
		if err != nil {
			t.Fatal(err)
		}
		n, err := NewNode(Config{Network: nw, ListenAddr: addr, Store: st, MaxPeers: 4})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { n.Close(); st.Close() })
		return n
	}
	a := mk("peer-a")
	b := mk("peer-b")

	if err := a.Join([]string{srv.Addr()}); err != nil {
		t.Fatal(err)
	}
	if a.ID().IsZero() || len(a.Peers()) != 0 {
		t.Fatalf("first joiner: id=%v peers=%v", a.ID(), a.Peers())
	}
	if err := b.Join([]string{srv.Addr()}); err != nil {
		t.Fatal(err)
	}
	peers := b.Peers()
	if len(peers) != 1 || peers[0].Addr != "peer-a" || peers[0].ID != a.ID() {
		t.Fatalf("second joiner peers = %+v", peers)
	}

	// a "moves": new node process at a new address, same identity.
	a.Close()
	a2 := mk("peer-a-moved")
	a2.mu.Lock()
	a2.id = a.ID()
	a2.mu.Unlock()
	if err := a2.Rejoin(); err != nil {
		t.Fatal(err)
	}

	// b rejoins and discovers a's new address via LIGLO.
	if err := b.Rejoin(); err != nil {
		t.Fatal(err)
	}
	peers = b.Peers()
	if len(peers) != 1 || peers[0].Addr != "peer-a-moved" {
		t.Fatalf("rejoined peers = %+v", peers)
	}
}

func TestRejoinDropsOfflinePeers(t *testing.T) {
	nw := transport.NewInProc()
	srv, err := liglo.NewServer(nw, "liglo-x", liglo.ServerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	st1, _ := storm.Open(filepath.Join(t.TempDir(), "a.storm"), storm.Options{})
	defer st1.Close()
	a, err := NewNode(Config{Network: nw, ListenAddr: "pa", Store: st1})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	a.Join([]string{srv.Addr()})

	st2, _ := storm.Open(filepath.Join(t.TempDir(), "b.storm"), storm.Options{})
	defer st2.Close()
	b, err := NewNode(Config{Network: nw, ListenAddr: "pb", Store: st2})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	b.Join([]string{srv.Addr()})
	if len(b.Peers()) != 1 {
		t.Fatalf("b peers = %v", b.Peers())
	}

	// a disappears; the validator notices; b's rejoin drops it.
	a.Close()
	nw.Drop("pa")
	srv.CheckNow()
	if err := b.Rejoin(); err != nil {
		t.Fatal(err)
	}
	if len(b.Peers()) != 0 {
		t.Fatalf("offline peer kept: %v", b.Peers())
	}
}

func TestProbe(t *testing.T) {
	c := newCluster(t, 2, nil, nil)
	if !c.nodes[0].Probe(c.nodes[1].Addr(), time.Second) {
		t.Fatal("probe of live peer failed")
	}
	if c.nodes[0].Probe("nonexistent", 100*time.Millisecond) {
		t.Fatal("probe of dead peer succeeded")
	}
}

func TestQueryAfterCloseFails(t *testing.T) {
	c := newCluster(t, 1, nil, nil)
	c.nodes[0].Close()
	if _, err := c.nodes[0].Query(&agent.KeywordAgent{Query: "q"}, QueryOptions{}); err != ErrNodeClosed {
		t.Fatalf("query after close: %v", err)
	}
	if _, err := c.nodes[0].Fetch("x", nil, time.Millisecond); err != ErrNodeClosed {
		t.Fatalf("fetch after close: %v", err)
	}
}

func TestNodeConfigValidation(t *testing.T) {
	if _, err := NewNode(Config{Network: transport.NewInProc()}); err == nil {
		t.Fatal("missing store accepted")
	}
	st, _ := storm.Open(filepath.Join(t.TempDir(), "v.storm"), storm.Options{})
	defer st.Close()
	if _, err := NewNode(Config{Store: st}); err == nil {
		t.Fatal("missing network accepted")
	}
}

func TestAddPeerSemantics(t *testing.T) {
	c := newCluster(t, 1, func(i int, cfg *Config) { cfg.MaxPeers = 2 }, nil)
	n := c.nodes[0]
	if !n.AddPeer(Peer{Addr: "x"}) {
		t.Fatal("first add failed")
	}
	if n.AddPeer(Peer{Addr: "x"}) {
		t.Fatal("duplicate add succeeded")
	}
	if !n.AddPeer(Peer{Addr: "y"}) {
		t.Fatal("second add failed")
	}
	if n.AddPeer(Peer{Addr: "z"}) {
		t.Fatal("add beyond MaxPeers succeeded")
	}
	if got := n.PeerAddrs(); len(got) != 2 || got[0] != "x" || got[1] != "y" {
		t.Fatalf("peers = %v", got)
	}
}

func TestWaitAnswersStopsEarly(t *testing.T) {
	c := newCluster(t, 4, nil, func(i int, s *storm.Store) {
		s.Put(&storm.Object{Name: fmt.Sprintf("m-%d", i), Keywords: []string{"m"}})
	})
	c.wire(topology.Star(4))
	start := time.Now()
	res, err := c.nodes[0].Query(&agent.KeywordAgent{Query: "m"}, QueryOptions{
		Timeout: 10 * time.Second, WaitAnswers: 4, NoReconfigure: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Answers) < 4 {
		t.Fatalf("answers = %d", len(res.Answers))
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("WaitAnswers did not stop early")
	}
}

func TestSkipLocal(t *testing.T) {
	c := newCluster(t, 2, nil, func(i int, s *storm.Store) {
		s.Put(&storm.Object{Name: fmt.Sprintf("s-%d", i), Keywords: []string{"s"}})
	})
	c.wire(topology.Line(2))
	res, err := c.nodes[0].Query(&agent.KeywordAgent{Query: "s"}, QueryOptions{
		Timeout: time.Second, WaitAnswers: 1, SkipLocal: true, NoReconfigure: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	names := collectNames(res.Answers)
	if names["s-0"] {
		t.Fatal("local result included despite SkipLocal")
	}
	if !names["s-1"] {
		t.Fatal("remote result missing")
	}
}

func TestDedupBoundedMemory(t *testing.T) {
	d := newDedup(4)
	for i := 0; i < 100; i++ {
		if d.Seen(wire.NewMsgID()) {
			t.Fatal("fresh id reported seen")
		}
	}
	if d.Len() > 4 {
		t.Fatalf("dedup grew to %d", d.Len())
	}
	id := wire.NewMsgID()
	d.Seen(id)
	if !d.Seen(id) {
		t.Fatal("recent id forgotten")
	}
}

func TestDedupEvictionOrder(t *testing.T) {
	d := newDedup(2)
	a, b, c := wire.NewMsgID(), wire.NewMsgID(), wire.NewMsgID()
	d.Seen(a)
	d.Seen(b)
	d.Seen(c) // evicts a
	if d.Seen(a) {
		t.Fatal("evicted id still remembered")
	}
	// b was evicted when a re-entered.
	if !d.Seen(c) {
		t.Fatal("c forgotten prematurely")
	}
}
