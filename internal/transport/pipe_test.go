package transport

import (
	"bytes"
	"io"
	"sync"
	"testing"
	"time"
)

func TestBufferedPipeBasicExchange(t *testing.T) {
	a, b := newBufferedPipe(inprocAddr("a"), inprocAddr("b"))
	defer a.Close()
	defer b.Close()

	if _, err := a.Write([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 5)
	if _, err := io.ReadFull(b, buf); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "hello" {
		t.Fatalf("read %q", buf)
	}
	// And the other direction.
	b.Write([]byte("world"))
	io.ReadFull(a, buf)
	if string(buf) != "world" {
		t.Fatalf("read %q", buf)
	}
}

func TestBufferedPipeWritesNeverBlock(t *testing.T) {
	// The property net.Pipe lacks and TCP has: a writer does not need a
	// concurrent reader. This is what prevents distributed send cycles
	// from deadlocking the in-process transport.
	a, b := newBufferedPipe(inprocAddr("a"), inprocAddr("b"))
	defer a.Close()
	defer b.Close()
	payload := bytes.Repeat([]byte("x"), 1<<16)
	for i := 0; i < 50; i++ {
		if _, err := a.Write(payload); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}
	// All of it is readable, in order.
	got := make([]byte, 50*len(payload))
	if _, err := io.ReadFull(b, got); err != nil {
		t.Fatal(err)
	}
}

func TestBufferedPipeCloseDrainsThenEOF(t *testing.T) {
	a, b := newBufferedPipe(inprocAddr("a"), inprocAddr("b"))
	a.Write([]byte("last words"))
	a.Close()
	buf := make([]byte, 10)
	if _, err := io.ReadFull(b, buf); err != nil {
		t.Fatalf("pending data lost after close: %v", err)
	}
	if string(buf) != "last words" {
		t.Fatalf("read %q", buf)
	}
	if _, err := b.Read(buf); err != io.EOF {
		t.Fatalf("want EOF after drain, got %v", err)
	}
}

func TestBufferedPipeCloseAbortsBlockedRead(t *testing.T) {
	a, b := newBufferedPipe(inprocAddr("a"), inprocAddr("b"))
	_ = b
	done := make(chan error, 1)
	go func() {
		buf := make([]byte, 1)
		_, err := a.Read(buf)
		done <- err
	}()
	a.Close()
	if err := <-done; err == nil {
		t.Fatal("blocked read survived close")
	}
}

func TestBufferedPipeWriteAfterPeerClose(t *testing.T) {
	a, b := newBufferedPipe(inprocAddr("a"), inprocAddr("b"))
	b.Close()
	// The peer killed its read buffer; our writes fail.
	if _, err := a.Write([]byte("x")); err == nil {
		t.Fatal("write to closed peer succeeded")
	}
}

func TestBufferedPipeConcurrentUse(t *testing.T) {
	a, b := newBufferedPipe(inprocAddr("a"), inprocAddr("b"))
	defer a.Close()
	defer b.Close()
	const msgs = 200
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < msgs; i++ {
			a.Write([]byte{byte(i)})
		}
	}()
	var got []byte
	go func() {
		defer wg.Done()
		buf := make([]byte, 16)
		for len(got) < msgs {
			n, err := b.Read(buf)
			if err != nil {
				return
			}
			got = append(got, buf[:n]...)
		}
	}()
	wg.Wait()
	if len(got) != msgs {
		t.Fatalf("read %d bytes, want %d", len(got), msgs)
	}
	for i, v := range got {
		if v != byte(i) {
			t.Fatalf("byte %d = %d (reordered)", i, v)
		}
	}
}

func TestBufferedPipeAddrs(t *testing.T) {
	a, b := newBufferedPipe(inprocAddr("left"), inprocAddr("right"))
	defer a.Close()
	defer b.Close()
	if a.LocalAddr().String() != "left" || a.RemoteAddr().String() != "right" {
		t.Fatalf("a addrs = %v %v", a.LocalAddr(), a.RemoteAddr())
	}
	if b.LocalAddr().String() != "right" || b.RemoteAddr().String() != "left" {
		t.Fatalf("b addrs = %v %v", b.LocalAddr(), b.RemoteAddr())
	}
	// Deadlines are accepted as no-ops.
	if err := a.SetDeadline(time.Time{}); err != nil {
		t.Fatal(err)
	}
	if err := a.SetReadDeadline(time.Time{}); err != nil {
		t.Fatal(err)
	}
	if err := a.SetWriteDeadline(time.Time{}); err != nil {
		t.Fatal(err)
	}
}
