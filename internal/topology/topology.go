// Package topology builds the logical network layouts of the paper's
// evaluation: Star, Tree and Line (§4.3), plus a seeded random graph for
// additional experiments. A topology is an adjacency structure over node
// indices 0..N-1 with a designated base node that issues queries.
package topology

import (
	"fmt"
	"math/rand"
	"sort"
)

// Topology is a logical peer graph.
type Topology struct {
	// Name describes the layout, e.g. "star(32)".
	Name string
	// N is the number of nodes.
	N int
	// Base is the query-issuing node.
	Base int
	// adj holds each node's direct peers in ascending order.
	adj [][]int
}

// Peers returns node i's direct peers. The slice must not be mutated.
func (t *Topology) Peers(i int) []int { return t.adj[i] }

// Degree returns the number of direct peers of node i.
func (t *Topology) Degree(i int) int { return len(t.adj[i]) }

// Edges returns the total number of undirected edges.
func (t *Topology) Edges() int {
	total := 0
	for _, p := range t.adj {
		total += len(p)
	}
	return total / 2
}

// connect adds an undirected edge.
func (t *Topology) connect(a, b int) {
	t.adj[a] = append(t.adj[a], b)
	t.adj[b] = append(t.adj[b], a)
}

func (t *Topology) sortAdj() {
	for i := range t.adj {
		sort.Ints(t.adj[i])
	}
}

func newTopology(name string, n int) *Topology {
	return &Topology{Name: name, N: n, adj: make([][]int, n)}
}

// Star builds the paper's Star layout: node 0 is the base and every other
// node connects directly to it.
func Star(n int) *Topology {
	t := newTopology(fmt.Sprintf("star(%d)", n), n)
	for i := 1; i < n; i++ {
		t.connect(0, i)
	}
	t.sortAdj()
	return t
}

// Line builds the paper's Line layout: nodes in a chain, each with two
// peers except the ends; the base is the leftmost node.
func Line(n int) *Topology {
	t := newTopology(fmt.Sprintf("line(%d)", n), n)
	for i := 0; i+1 < n; i++ {
		t.connect(i, i+1)
	}
	t.sortAdj()
	return t
}

// Tree builds a complete k-ary tree with n nodes filled level by level;
// the root (node 0) is the base. Every internal node has up to k
// children, matching the paper's Tree layout where each non-leaf node has
// k directly connected peers.
func Tree(n, k int) *Topology {
	if k < 1 {
		k = 1
	}
	t := newTopology(fmt.Sprintf("tree(%d,k=%d)", n, k), n)
	for i := 1; i < n; i++ {
		parent := (i - 1) / k
		t.connect(parent, i)
	}
	t.sortAdj()
	return t
}

// TreeLevels returns the number of nodes in a complete k-ary tree of the
// given depth (levels below the root; level 0 is just the root).
func TreeLevels(k, levels int) int {
	n, width := 1, 1
	for l := 0; l < levels; l++ {
		width *= k
		n += width
	}
	return n
}

// Depth returns the maximum hop distance from the base to any node.
func (t *Topology) Depth() int {
	dist := t.BFS(t.Base)
	max := 0
	for _, d := range dist {
		if d > max {
			max = d
		}
	}
	return max
}

// BFS returns hop distances from start to every node (-1 if unreachable).
func (t *Topology) BFS(start int) []int {
	dist := make([]int, t.N)
	for i := range dist {
		dist[i] = -1
	}
	dist[start] = 0
	queue := []int{start}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range t.adj[u] {
			if dist[v] < 0 {
				dist[v] = dist[u] + 1
				queue = append(queue, v)
			}
		}
	}
	return dist
}

// Connected reports whether every node is reachable from the base.
func (t *Topology) Connected() bool {
	for _, d := range t.BFS(t.Base) {
		if d < 0 {
			return false
		}
	}
	return true
}

// Random builds a connected random graph: a random spanning tree plus
// extra edges until the average degree approaches degree. Deterministic
// for a given seed.
func Random(n, degree int, seed int64) *Topology {
	t := newTopology(fmt.Sprintf("random(%d,deg=%d,seed=%d)", n, degree, seed), n)
	if n <= 1 {
		return t
	}
	rng := rand.New(rand.NewSource(seed))
	// Spanning tree: attach each node to a random earlier node.
	for i := 1; i < n; i++ {
		t.connect(rng.Intn(i), i)
	}
	has := func(a, b int) bool {
		for _, v := range t.adj[a] {
			if v == b {
				return true
			}
		}
		return false
	}
	wantEdges := n * degree / 2
	for tries := 0; t.Edges() < wantEdges && tries < n*degree*10; tries++ {
		a, b := rng.Intn(n), rng.Intn(n)
		if a == b || has(a, b) {
			continue
		}
		t.connect(a, b)
	}
	t.sortAdj()
	return t
}
