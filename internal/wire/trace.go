package wire

// TraceContext is the compact per-query trace context threaded through
// envelopes: which query this message belongs to and where the base node
// collecting the trace lives. It travels as a versioned codec extension
// (see codec.go), so decoders that predate it still parse trace-less
// frames and encoders only pay for it when tracing is on.
type TraceContext struct {
	// QueryID identifies the traced query.
	QueryID MsgID `json:"query_id"`
	// Base is the transport address of the node assembling the trace.
	Base string `json:"base"`
}

// TraceSpan is one hop's record of handling a traced agent: who handled
// it, how it got there, what it cost and what it produced. Peers
// piggyback spans on the out-of-network result return (or a standalone
// span report when there is nothing else to send), and the base node
// assembles them into a query trace tree.
type TraceSpan struct {
	// Peer is the recording node's address.
	Peer string `json:"peer"`
	// Parent is the address the agent arrived from (the previous hop).
	Parent string `json:"parent,omitempty"`
	// Hop is how far the agent had travelled when it arrived here.
	Hop int `json:"hop"`
	// WaitNS is the time between arrival and execution start, in
	// nanoseconds — queueing plus any class-transfer wait.
	WaitNS int64 `json:"wait_ns"`
	// ExecNS is the agent execution time in nanoseconds.
	ExecNS int64 `json:"exec_ns"`
	// Matches is how many local results the agent produced.
	Matches int `json:"matches"`
	// FanOut is how many direct peers the agent was clone-forwarded to.
	FanOut int `json:"fan_out"`
	// Drop is why the agent was not executed ("" when it ran):
	// "expired", "duplicate", "decode", "no-class".
	Drop string `json:"drop,omitempty"`
}

// encodeTraceContext serializes the context for the codec's trace
// extension field.
func encodeTraceContext(tc *TraceContext) []byte {
	var e Encoder
	e.MsgID(tc.QueryID)
	e.String(tc.Base)
	return e.Bytes()
}

func decodeTraceContext(payload []byte) (*TraceContext, error) {
	d := NewDecoder(payload)
	tc := &TraceContext{QueryID: d.MsgID(), Base: d.String()}
	if err := d.Finish(); err != nil {
		return nil, err
	}
	return tc, nil
}

// encodeTraceSpan serializes a span for the codec's span extension field.
func encodeTraceSpan(s *TraceSpan) []byte {
	var e Encoder
	e.String(s.Peer)
	e.String(s.Parent)
	e.Varint(int64(s.Hop))
	e.Varint(s.WaitNS)
	e.Varint(s.ExecNS)
	e.Varint(int64(s.Matches))
	e.Varint(int64(s.FanOut))
	e.String(s.Drop)
	return e.Bytes()
}

func decodeTraceSpan(payload []byte) (*TraceSpan, error) {
	d := NewDecoder(payload)
	s := &TraceSpan{Peer: d.String(), Parent: d.String()}
	s.Hop = int(d.Varint())
	s.WaitNS = d.Varint()
	s.ExecNS = d.Varint()
	s.Matches = int(d.Varint())
	s.FanOut = int(d.Varint())
	s.Drop = d.String()
	if err := d.Finish(); err != nil {
		return nil, err
	}
	return s, nil
}
