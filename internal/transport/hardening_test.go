package transport

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"bestpeer/internal/wire"
)

func (c *collector) count() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.got)
}

// hangNet wraps a Network so dials to chosen addresses block until
// released — the half-dead host that neither accepts nor refuses.
type hangNet struct {
	inner Network
	mu    sync.Mutex
	hung  map[string]chan struct{}
}

func newHangNet(inner Network) *hangNet {
	return &hangNet{inner: inner, hung: make(map[string]chan struct{})}
}

func (h *hangNet) hang(addr string) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if _, ok := h.hung[addr]; !ok {
		h.hung[addr] = make(chan struct{})
	}
}

func (h *hangNet) release(addr string) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if ch, ok := h.hung[addr]; ok {
		close(ch)
		delete(h.hung, addr)
	}
}

func (h *hangNet) Listen(addr string) (net.Listener, error) { return h.inner.Listen(addr) }

func (h *hangNet) Dial(addr string) (net.Conn, error) {
	h.mu.Lock()
	ch := h.hung[addr]
	h.mu.Unlock()
	if ch != nil {
		<-ch
	}
	return h.inner.Dial(addr)
}

// TestSendNeverBlocksOnHungDial is the contract the query fan-out relies
// on: Send returns immediately even while the destination's dial hangs,
// overflow is reported as ErrQueueFull, and the caller never waits out
// the dial timeout.
func TestSendNeverBlocksOnHungDial(t *testing.T) {
	nw := newHangNet(NewInProc())
	nw.hang("tarpit")
	defer nw.release("tarpit")

	m, err := NewMessengerOpts(nw, "base", nil, Options{
		DialTimeout: 2 * time.Second,
		QueueSize:   4,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	start := time.Now()
	var full int
	for i := 0; i < 20; i++ {
		err := m.Send("tarpit", env(wire.KindAgent, "m"))
		if errors.Is(err, ErrQueueFull) {
			full++
		} else if err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
	}
	elapsed := time.Since(start)
	if elapsed > 500*time.Millisecond {
		t.Fatalf("20 sends took %v with a hung dial; Send must not block", elapsed)
	}
	if full == 0 {
		t.Fatal("queue of 4 absorbed 20 sends without ErrQueueFull")
	}
	if m.Dropped() == 0 {
		t.Fatal("overflowed sends not counted as dropped")
	}
}

// TestSuspectBackoffAndRecovery walks a destination through the failure
// lifecycle: repeated dial failures mark it suspect, sends during the
// backoff window are refused cheaply, and a successful delivery after
// the peer comes back clears the mark.
func TestSuspectBackoffAndRecovery(t *testing.T) {
	nw := NewInProc()
	m, err := NewMessengerOpts(nw, "base", nil, Options{
		DialTimeout:   100 * time.Millisecond,
		FailThreshold: 2,
		BackoffBase:   50 * time.Millisecond,
		BackoffMax:    200 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	// Nobody listens at "flaky" yet: drive the peer into suspicion.
	deadline := time.Now().Add(5 * time.Second)
	for {
		err := m.Send("flaky", env(wire.KindAgent, "m"))
		if errors.Is(err, ErrPeerSuspect) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("peer never became suspect")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if !m.Suspect("flaky") {
		t.Fatal("Suspect() disagrees with ErrPeerSuspect from Send")
	}

	// Bring the peer up; once the backoff window lapses the next send
	// goes through and clears the suspicion.
	c := newCollector()
	peer, err := NewMessenger(nw, "flaky", c.handle)
	if err != nil {
		t.Fatal(err)
	}
	defer peer.Close()

	for c.count() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("delivery never resumed after peer came up")
		}
		m.Send("flaky", env(wire.KindAgent, "recovered"))
		time.Sleep(20 * time.Millisecond)
	}
	if m.Suspect("flaky") {
		t.Fatal("successful delivery did not clear suspect state")
	}
}

// TestHandlerPanicContained checks a panicking handler takes down
// neither the messenger nor the connection's read loop: later envelopes
// on the same connection are still delivered.
func TestHandlerPanicContained(t *testing.T) {
	nw := NewInProc()
	c := newCollector()
	recv, err := NewMessenger(nw, "recv", func(e *wire.Envelope) {
		if string(e.Body) == "boom" {
			panic("handler exploded")
		}
		c.handle(e)
	})
	if err != nil {
		t.Fatal(err)
	}
	defer recv.Close()

	send, err := NewMessenger(nw, "send", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer send.Close()

	if err := send.Send("recv", env(wire.KindAgent, "boom")); err != nil {
		t.Fatal(err)
	}
	if err := send.Send("recv", env(wire.KindAgent, "after")); err != nil {
		t.Fatal(err)
	}
	delivered := c.waitFor(t, 1)
	if got := string(delivered[0].Body); got != "after" {
		t.Fatalf("delivered body = %q, want %q", got, "after")
	}
	if recv.HandlerPanics() != 1 {
		t.Fatalf("HandlerPanics = %d, want 1", recv.HandlerPanics())
	}
}

// TestSendDuringClose hammers Send from many goroutines while Close
// runs. The race detector guards the internals; the assertions guard
// the contract that post-close sends fail with ErrMessengerClosed.
func TestSendDuringClose(t *testing.T) {
	nw := NewInProc()
	c := newCollector()
	recv, err := NewMessenger(nw, "recv", c.handle)
	if err != nil {
		t.Fatal(err)
	}
	defer recv.Close()

	m, err := NewMessenger(nw, "send", nil)
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 8; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				m.Send("recv", env(wire.KindAgent, fmt.Sprintf("g%d-%d", g, i)))
			}
		}()
	}
	time.Sleep(20 * time.Millisecond)
	if err := m.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	close(stop)
	wg.Wait()

	if err := m.Send("recv", env(wire.KindAgent, "late")); !errors.Is(err, ErrMessengerClosed) {
		t.Fatalf("send after close = %v, want ErrMessengerClosed", err)
	}
}
