package agent

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

// Fingerprinter is implemented by agent types whose query semantics can
// be reduced to a stable, normalized fingerprint. The qroute subsystem
// uses it twice: QueryKey keys the per-node answer cache, and QueryTerms
// keys the learned routing index. Agents that do not implement it (or
// whose QueryKey is empty) bypass both.
type Fingerprinter interface {
	// QueryKey returns a canonical string capturing the agent's full
	// query semantics: two agents of the same class with equal QueryKey
	// MUST produce identical results against the same store state and
	// access level. Normalization may only fold differences the match
	// semantics ignore (e.g. letter case — storm matching is
	// case-insensitive). Empty means "do not cache".
	QueryKey() string
	// QueryTerms returns the normalized content terms the query
	// searches for — the routing-relevant part of the fingerprint,
	// without result-shaping parameters like K or IncludeData. Terms are
	// never empty strings; a query with no routing-relevant content
	// returns nil.
	QueryTerms() []string
}

// queryTerm wraps a single lowered query as a term list, dropping the
// empty query (an empty term would pollute the routing index).
func queryTerm(query string) []string {
	if query == "" {
		return nil
	}
	return []string{strings.ToLower(query)}
}

// QueryKey implements Fingerprinter: storm keyword matching lowercases
// both sides, so case is the only safe normalization.
func (a *KeywordAgent) QueryKey() string { return strings.ToLower(a.Query) }

// QueryTerms implements Fingerprinter. The whole query string is one
// keyword to storm, so it is a single routing term.
func (a *KeywordAgent) QueryTerms() []string { return queryTerm(a.Query) }

// QueryKey implements Fingerprinter.
func (a *DigestAgent) QueryKey() string { return strings.ToLower(a.Query) }

// QueryTerms implements Fingerprinter.
func (a *DigestAgent) QueryTerms() []string { return queryTerm(a.Query) }

// QueryKey implements Fingerprinter: K and IncludeData shape the result
// set, so they are part of the key.
func (a *TopKAgent) QueryKey() string {
	return fmt.Sprintf("%s\x1fk=%d\x1fdata=%t", strings.ToLower(a.Query), a.K, a.IncludeData)
}

// QueryTerms implements Fingerprinter.
func (a *TopKAgent) QueryTerms() []string { return queryTerm(a.Query) }

// QueryKey implements Fingerprinter: filter string comparisons are
// case-insensitive (see filter.go), so lowercasing the expression is
// semantics-preserving; IncludeData shapes the results.
func (a *FilterAgent) QueryKey() string {
	return fmt.Sprintf("%s\x1fdata=%t", strings.ToLower(a.Expr), a.IncludeData)
}

// QueryTerms implements Fingerprinter: the comparison values of the
// expression, minus field names and bare numbers — the content words a
// provider would have to hold for the filter to match.
func (a *FilterAgent) QueryTerms() []string { return filterTerms(a.Expr) }

// filterFields are the predicate field names of the filter grammar.
var filterFields = map[string]bool{
	"name": true, "keyword": true, "size": true, "kind": true, "data": true,
}

// filterTerms extracts the routing-relevant words of a filter expression.
func filterTerms(expr string) []string {
	words := strings.FieldsFunc(strings.ToLower(expr), func(r rune) bool {
		return !unicode.IsLetter(r) && !unicode.IsDigit(r) &&
			r != '-' && r != '_' && r != '.'
	})
	var out []string
	for _, w := range words {
		if filterFields[w] {
			continue
		}
		if _, err := strconv.Atoi(w); err == nil {
			continue // numeric bound, not a content term
		}
		out = append(out, w)
	}
	return out
}
