package core

import (
	"encoding/binary"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"bestpeer/internal/agent"
	"bestpeer/internal/liglo"
	"bestpeer/internal/obs"
	"bestpeer/internal/qroute"
	"bestpeer/internal/storm"
	"bestpeer/internal/topology"
	"bestpeer/internal/transport"
	"bestpeer/internal/transport/faultnet"
)

// Chaos tests drive full BestPeer nodes through the failure classes the
// paper's liveness story depends on — lossy links, partitions, dead
// LIGLO servers, half-dead hosts — using the faultnet fabric. Every node
// sees the network through its own fabric.Host view, so directional
// faults apply per edge.

// chaosTransport tunes the messenger for fast failure detection, so
// tests spend milliseconds (not default seconds) waiting out faults.
func chaosTransport() transport.Options {
	return transport.Options{
		DialTimeout:   250 * time.Millisecond,
		WriteTimeout:  250 * time.Millisecond,
		QueueSize:     256,
		FailThreshold: 2,
		BackoffBase:   50 * time.Millisecond,
		BackoffMax:    250 * time.Millisecond,
	}
}

func chaosLiglo() liglo.ClientOptions {
	return liglo.ClientOptions{
		DialTimeout: 250 * time.Millisecond,
		CallTimeout: time.Second,
		Retries:     2,
		BackoffBase: 50 * time.Millisecond,
		BackoffMax:  200 * time.Millisecond,
	}
}

// newChaosCluster starts n nodes whose traffic all flows through one
// fault fabric seeded for reproducibility.
func newChaosCluster(t *testing.T, n int, seed int64, seedFn func(i int, s *storm.Store)) (*cluster, *faultnet.Fabric) {
	t.Helper()
	fab := faultnet.New(transport.NewInProc(), seed)
	c := newCluster(t, n, func(i int, cfg *Config) {
		cfg.Network = fab.Host(cfg.ListenAddr)
		cfg.Transport = chaosTransport()
		cfg.Liglo = chaosLiglo()
	}, seedFn)
	return c, fab
}

// TestChaosQueryUnderMessageLoss floods a 20-node random overlay with a
// query while every message independently has a 20% chance of being
// dropped. Redundant paths and direct answer returns must still deliver
// a healthy majority of the answers.
func TestChaosQueryUnderMessageLoss(t *testing.T) {
	const n = 20
	c, fab := newChaosCluster(t, n, 1, func(i int, s *storm.Store) {
		s.Put(&storm.Object{
			Name:     fmt.Sprintf("music-%d", i),
			Keywords: []string{"music"},
			Data:     []byte{byte(i)},
		})
	})
	c.wire(topology.Random(n, 4, 7))
	fab.SetConfig(faultnet.Config{DropProb: 0.2})

	res, err := c.nodes[0].Query(&agent.KeywordAgent{Query: "music"}, QueryOptions{
		Timeout:       2 * time.Second,
		NoReconfigure: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Node 0 answers locally; 19 remote answers are each at risk. With
	// p=0.2 per message and redundant propagation paths, fewer than half
	// arriving would mean the non-blocking path is eating messages on
	// top of the injected loss.
	if got := len(res.Answers); got < 10 {
		t.Fatalf("answers = %d of %d under 20%% loss, want >= 10 (stats: %+v)",
			got, n, fab.Stats())
	}
	if s := fab.Stats(); s.MessagesDropped == 0 {
		t.Fatalf("fault fabric dropped nothing; the test exercised a perfect network")
	}
	t.Logf("answers=%d/%d stats=%+v", len(res.Answers), n, fab.Stats())
}

// TestChaosPartitionHealsViaSweepAndReplenish partitions an 8-node
// network in half, lets SweepPeers drop the unreachable half, then
// heals and replenishes from LIGLO — the paper's "simply replace those
// peers by new peers that it encounters".
func TestChaosPartitionHealsViaSweepAndReplenish(t *testing.T) {
	const n = 8
	c, fab := newChaosCluster(t, n, 2, func(i int, s *storm.Store) {
		s.Put(&storm.Object{
			Name:     fmt.Sprintf("chaos-%d", i),
			Keywords: []string{"chaos"},
			Data:     []byte{byte(i)},
		})
	})
	srv, err := liglo.NewServer(fab.Host("liglo-chaos"), "liglo-chaos", liglo.ServerConfig{InitialPeers: 0})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	for _, node := range c.nodes {
		if err := node.Join([]string{"liglo-chaos"}); err != nil {
			t.Fatal(err)
		}
	}
	// Cross-wire the halves: node i peers with a same-half neighbour and
	// its opposite number across the divide.
	var halfA, halfB []string
	for i, node := range c.nodes {
		same := (i + 1) % (n / 2)
		cross := (i + n/2) % n
		if i >= n/2 {
			same += n / 2
			cross = i - n/2
		}
		node.SetPeers([]Peer{
			{Addr: c.nodes[same].Addr()},
			{Addr: c.nodes[cross].Addr()},
		})
		if i < n/2 {
			halfA = append(halfA, node.Addr())
		} else {
			halfB = append(halfB, node.Addr())
		}
	}

	base := c.nodes[0]
	crossAddr := c.nodes[n/2].Addr()
	if !base.Probe(crossAddr, 500*time.Millisecond) {
		t.Fatal("cross-half probe failed before the partition")
	}

	// Partition: the LIGLO server is in neither set, so it stays
	// reachable from both sides, as a global-name server should be.
	fab.Partition(halfA, halfB)
	if base.Probe(crossAddr, 500*time.Millisecond) {
		t.Fatal("probe crossed a live partition")
	}
	dropped := base.SweepPeers(500 * time.Millisecond)
	if dropped == 0 {
		t.Fatal("sweep found no unresponsive peers during the partition")
	}
	for _, addr := range base.PeerAddrs() {
		for _, b := range halfB {
			if addr == b {
				t.Fatalf("peer %s from the far half survived the sweep", addr)
			}
		}
	}

	fab.HealPartitions()
	added, err := base.Replenish()
	if err != nil {
		t.Fatalf("replenish after heal: %v", err)
	}
	if added == 0 {
		t.Fatal("replenish added no peers despite freed slots")
	}
	// Let any suspect backoff from partition-era failures lapse.
	time.Sleep(500 * time.Millisecond)

	res, err := base.Query(&agent.KeywordAgent{Query: "chaos"}, QueryOptions{
		Timeout:       2 * time.Second,
		NoReconfigure: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	foundFar := false
	for _, a := range res.Answers {
		for _, b := range halfB {
			if a.PeerAddr == b {
				foundFar = true
			}
		}
	}
	if !foundFar {
		t.Fatalf("no answers from the healed half; answers=%v", collectNames(res.Answers))
	}
}

// TestChaosPartitionMetricsAccountForLoss checks the observability story
// under faults: when a partition eats half the network mid-query, the
// loss is visible in the metrics — the fabric counts refused dials, the
// transport counts dropped sends, and the base's query trace contains
// spans only from the reachable half, with duplicate-drop spans agreeing
// with the nodes' drop-reason counters.
func TestChaosPartitionMetricsAccountForLoss(t *testing.T) {
	const n = 6
	fabReg := obs.NewRegistry()
	fab := faultnet.NewWithRegistry(transport.NewInProc(), 5, fabReg)
	c := newCluster(t, n, func(i int, cfg *Config) {
		cfg.Network = fab.Host(cfg.ListenAddr)
		cfg.Transport = chaosTransport()
		cfg.Liglo = chaosLiglo()
	}, func(i int, s *storm.Store) {
		s.Put(&storm.Object{
			Name:     fmt.Sprintf("acct-%d", i),
			Keywords: []string{"acct"},
			Data:     []byte{byte(i)},
		})
	})
	// Full mesh, then cut it in half.
	var halfA, halfB []string
	for i, node := range c.nodes {
		var peers []Peer
		for j := range c.nodes {
			if j != i {
				peers = append(peers, Peer{Addr: c.nodes[j].Addr()})
			}
		}
		node.SetPeers(peers)
		if i < n/2 {
			halfA = append(halfA, node.Addr())
		} else {
			halfB = append(halfB, node.Addr())
		}
	}
	fab.Partition(halfA, halfB)

	base := c.nodes[0]
	res, err := base.Query(&agent.KeywordAgent{Query: "acct"}, QueryOptions{
		Timeout:       1500 * time.Millisecond,
		NoReconfigure: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	far := make(map[string]bool, len(halfB))
	for _, b := range halfB {
		far[b] = true
	}
	for _, a := range res.Answers {
		if far[a.PeerAddr] {
			t.Fatalf("answer from %s crossed a live partition", a.PeerAddr)
		}
	}
	if len(res.Answers) != n/2 {
		t.Fatalf("answers = %d, want %d (the reachable half)", len(res.Answers), n/2)
	}

	// The fabric's registry accounts for every refused dial it reported.
	fs := fab.Stats()
	if fs.DialsRefused == 0 {
		t.Fatal("partition refused no dials; the query never hit the cut")
	}
	snap := fabReg.Snapshot()
	if got := snap.Value("bestpeer_faultnet_dials_refused_total"); got != float64(fs.DialsRefused) {
		t.Fatalf("faultnet metric dials_refused = %v, stats say %d", got, fs.DialsRefused)
	}
	if got := snap.Value("bestpeer_faultnet_messages_dropped_total"); got != float64(fs.MessagesDropped) {
		t.Fatalf("faultnet metric messages_dropped = %v, stats say %d", got, fs.MessagesDropped)
	}

	// Sends into the far half died at the transport layer, and each
	// reachable node's registry accounts for its messenger's drop count.
	droppedTotal := uint64(0)
	for i := 0; i < n/2; i++ {
		node := c.nodes[i]
		dropped := uint64(0)
		if f := node.Metrics().Snapshot().Family("bestpeer_transport_messages_dropped_total"); f != nil {
			for _, m := range f.Metrics {
				dropped += uint64(m.Value)
			}
		}
		if got := node.MessengerStats().Dropped; got != dropped {
			t.Fatalf("node %d transport drops: metric %d != stats %d", i, dropped, got)
		}
		droppedTotal += dropped
	}
	if droppedTotal == 0 {
		t.Fatal("no transport drops recorded despite a partition mid-query")
	}

	// The trace holds spans from the reachable half only, and its
	// duplicate-drop spans match the nodes' drop-reason counters once
	// the asynchronous span reports settle.
	deadline := time.Now().Add(5 * time.Second)
	for {
		tr, ok := base.Trace(res.ID)
		if !ok {
			t.Fatal("no trace for the partitioned query")
		}
		executed, dupSpans := 0, uint64(0)
		for _, s := range tr.Spans {
			if far[s.Peer] {
				t.Fatalf("span from unreachable peer %s: %+v", s.Peer, s)
			}
			switch s.Drop {
			case "":
				executed++
			case "duplicate":
				dupSpans++
			}
		}
		dupMetric := uint64(0)
		for i := 0; i < n/2; i++ {
			dupMetric += c.nodes[i].Stats().DuplicatesDropped
		}
		if executed == n/2 && dupSpans == dupMetric {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("trace never settled: executed=%d want %d, dup spans=%d vs metric %d",
				executed, n/2, dupSpans, dupMetric)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// chaosVersion encodes a mutation counter as object data so an answer
// reveals which store generation produced it.
func chaosVersion(v uint64) []byte {
	b := make([]byte, 8)
	binary.BigEndian.PutUint64(b, v)
	return b
}

// TestChaosNoStaleCachedAnswersUnderMutation is the qroute freshness
// invariant under fire: with 25% message loss and every serving node's
// store being rewritten concurrently, no node may serve a cached answer
// from a stale epoch. Each node's object carries a version counter and
// each mutator publishes the committed version only after Put returns —
// since Put fires the epoch hook before returning, any answer observed
// by a query that started afterwards must carry at least that version.
func TestChaosNoStaleCachedAnswersUnderMutation(t *testing.T) {
	const (
		n      = 5
		rounds = 50
	)
	fab := faultnet.New(transport.NewInProc(), 6)
	c := newCluster(t, n, func(i int, cfg *Config) {
		cfg.Network = fab.Host(cfg.ListenAddr)
		cfg.Transport = chaosTransport()
		if i != 0 {
			// Caching at the serving nodes only: a base-site cache would
			// hold remote answers whose staleness is bounded by TTL, not
			// by the remote store's epoch, and mask the serve-site checks.
			cfg.QRoute = qroute.Options{Enable: true, Route: qroute.RouteOptions{Epsilon: -1}}
		}
	}, func(i int, s *storm.Store) {
		s.Put(&storm.Object{
			Name:     fmt.Sprintf("v-%d", i),
			Keywords: []string{"hot"},
			Data:     chaosVersion(0),
		})
	})
	c.wire(topology.Random(n, 3, 4))
	fab.SetConfig(faultnet.Config{DropProb: 0.25})

	// One mutator per serving node: rewrite the object, then publish the
	// committed version. The Sleep leaves room for several queries per
	// generation so the caches actually get hit between invalidations.
	var committed [n]atomic.Uint64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 1; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for v := uint64(1); ; v++ {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := c.nodes[i].Store().Put(&storm.Object{
					Name:     fmt.Sprintf("v-%d", i),
					Keywords: []string{"hot"},
					Data:     chaosVersion(v),
				}); err != nil {
					t.Errorf("mutator %d: %v", i, err)
					return
				}
				committed[i].Store(v)
				// Several query rounds fit in one generation, so caches
				// get hit between invalidations.
				time.Sleep(60 * time.Millisecond)
			}
		}(i)
	}
	defer func() { close(stop); wg.Wait() }()

	base := c.nodes[0]
	for r := 0; r < rounds; r++ {
		var floor [n]uint64
		for i := 1; i < n; i++ {
			floor[i] = committed[i].Load()
		}
		res, err := base.Query(&agent.KeywordAgent{Query: "hot"}, QueryOptions{
			Timeout:       15 * time.Millisecond,
			NoReconfigure: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		for _, a := range res.Answers {
			idx, err := strconv.Atoi(strings.TrimPrefix(a.Result.Name, "v-"))
			if err != nil || idx < 0 || idx >= n {
				t.Fatalf("unexpected answer %q", a.Result.Name)
			}
			if len(a.Result.Data) != 8 {
				t.Fatalf("answer %q has no version payload", a.Result.Name)
			}
			got := binary.BigEndian.Uint64(a.Result.Data)
			if got < floor[idx] {
				t.Fatalf("round %d: node %d served version %d, but %d was committed "+
					"before the query started (cached=%v) — stale epoch leaked",
					r, idx, got, floor[idx], a.Cached)
			}
		}
	}

	// The invariant is vacuous if the caches were never exercised: the
	// serving nodes must have answered from cache at least once across
	// the run.
	hits := uint64(0)
	for i := 1; i < n; i++ {
		s := c.nodes[i].CacheStats()
		hits += s.Cache.Hits + s.Cache.NegativeHits
	}
	if hits == 0 {
		t.Fatal("no serve-site cache hits across the run; the test exercised nothing")
	}
	t.Logf("serve-site hits=%d drops=%+v", hits, fab.Stats())
}

// TestChaosLigloFailover kills LIGLO servers under a node's feet:
// registration fails over to the surviving server, Rejoin against a
// dead home errors out within its bounded retries instead of hanging,
// and succeeds once the home heals.
func TestChaosLigloFailover(t *testing.T) {
	c, fab := newChaosCluster(t, 1, 3, nil)
	srvA, err := liglo.NewServer(fab.Host("liglo-a"), "liglo-a", liglo.ServerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer srvA.Close()
	srvB, err := liglo.NewServer(fab.Host("liglo-b"), "liglo-b", liglo.ServerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer srvB.Close()

	node := c.nodes[0]
	fab.Kill("liglo-a")
	if err := node.Join([]string{"liglo-a", "liglo-b"}); err != nil {
		t.Fatalf("join with one dead server: %v", err)
	}
	if home := node.ID().LIGLO; home != "liglo-b" {
		t.Fatalf("registered with %q, want failover to liglo-b", home)
	}

	fab.Kill("liglo-b")
	start := time.Now()
	if err := node.Rejoin(); err == nil {
		t.Fatal("rejoin against a dead home server succeeded")
	}
	// Bounded: 3 attempts x (250ms dial timeout + backoff) plus
	// scheduling slack, nowhere near a hang.
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("rejoin took %v to give up; retries are not bounded", elapsed)
	}

	fab.Heal("liglo-b")
	if err := node.Rejoin(); err != nil {
		t.Fatalf("rejoin after heal: %v", err)
	}
}

// TestChaosHungPeerDoesNotStallQuery is the acceptance criterion for
// the non-blocking send path: a peer whose dial hangs (half-dead host)
// must not delay the answers of a responsive peer, even though the dial
// timeout is far longer than the whole query.
func TestChaosHungPeerDoesNotStallQuery(t *testing.T) {
	fab := faultnet.New(transport.NewInProc(), 4)
	// Dial timeout (2s) dwarfs the query window: if the fan-out dialed
	// inline, the hung first peer would eat the whole collection budget
	// several times over.
	c := newCluster(t, 3, func(i int, cfg *Config) {
		cfg.Network = fab.Host(cfg.ListenAddr)
		cfg.Transport = transport.Options{DialTimeout: 2 * time.Second}
	}, func(i int, s *storm.Store) {
		if i == 2 {
			s.Put(&storm.Object{Name: "hot-take", Keywords: []string{"hot"}, Data: []byte("x")})
		}
	})
	base := c.nodes[0]
	hung, live := c.nodes[1].Addr(), c.nodes[2].Addr()
	base.SetPeers([]Peer{{Addr: hung}, {Addr: live}}) // hung peer first
	fab.HangDial(hung)
	defer fab.HealDial(hung)

	start := time.Now()
	res, err := base.Query(&agent.KeywordAgent{Query: "hot"}, QueryOptions{
		Timeout:       400 * time.Millisecond,
		WaitAnswers:   1,
		SkipLocal:     true,
		NoReconfigure: true,
	})
	elapsed := time.Since(start)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Answers) != 1 || res.Answers[0].Result.Name != "hot-take" {
		t.Fatalf("answers = %v, want the live peer's hot-take", collectNames(res.Answers))
	}
	if elapsed > time.Second {
		t.Fatalf("query took %v; a hung peer stalled the fan-out", elapsed)
	}
	t.Logf("query returned in %v with a hung first peer", elapsed)
}
