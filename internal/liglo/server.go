package liglo

import (
	"fmt"
	"net"
	"sort"
	"sync"
	"time"

	"bestpeer/internal/chord"
	"bestpeer/internal/obs"
	"bestpeer/internal/transport"
	"bestpeer/internal/wire"
)

// ServerConfig tunes a LIGLO server.
type ServerConfig struct {
	// Capacity caps the number of members; further registrations are
	// rejected with ErrFull so the node seeks another server. Zero means
	// unlimited.
	Capacity int
	// InitialPeers is how many (BPID, addr) pairs a fresh registrant
	// receives as its starting direct peers. Zero defaults to 5.
	InitialPeers int
	// ProbeInterval is how often the validator checks member liveness.
	// Zero disables automatic probing (CheckNow remains available).
	ProbeInterval time.Duration
	// ExpireAfter drops members that have been offline longer than this
	// (as observed by the validator), freeing capacity and keeping the
	// member table bounded. Zero never expires — a member's BPID is
	// normally valid forever, so expiry is an operator policy.
	ExpireAfter time.Duration
	// Metrics is the registry the server's counters are published to.
	// Nil means a private registry.
	Metrics *obs.Registry
	// Journal receives structured member-liveness events (registered,
	// online, offline, expired). Nil disables journalling.
	Journal *obs.Journal
	// Ring, when non-nil, joins this server into a Chord ring of LIGLO
	// servers that partitions BPID resolution by key ownership with
	// successor-list replication. Nil keeps the classic standalone mode.
	Ring *RingConfig
}

type member struct {
	node     uint64
	addr     string
	online   bool
	lastSeen time.Time
	// departed marks an explicit graceful leave (Deregister). The
	// member's process often stays alive so it can Rejoin later — the
	// liveness sweep must not take a successful dial as evidence the
	// member is back. Only Rejoin clears the flag.
	departed bool
}

// Server is one LIGLO server: it issues BPIDs, records member addresses
// and validates their liveness.
type Server struct {
	network  transport.Network
	listener net.Listener
	cfg      ServerConfig

	mu      sync.Mutex
	nextID  uint64
	members map[uint64]*member
	// foreign holds replicated records for BPIDs issued by other ring
	// servers, keyed by BPID string. Served when this server owns the
	// issuer's ring key.
	foreign map[string]RingRecord
	closed  bool

	// Ring mode (nil / zero outside it).
	ring           *chord.Node
	replicateEvery time.Duration

	metrics *obs.Registry

	wg        sync.WaitGroup
	stopProbe chan struct{}

	// Metric handles, registered on cfg.Metrics at construction.
	registers   *obs.Counter
	rejoins     *obs.Counter
	lookups     *obs.Counter
	rejected    *obs.Counter
	expired     *obs.Counter
	deregisters *obs.Counter
	// panics counts goroutine panics contained by the server; anything
	// above zero is a bug worth a look, but it never kills the process.
	panics *obs.Counter
	// Liveness-sweep outcomes: how many member probes came back alive
	// or dead across all sweeps, and how many sweeps ran.
	sweeps       *obs.Counter
	sweepOnline  *obs.Counter
	sweepOffline *obs.Counter
	// Ring-mode traffic: requests redirected to the owning server and
	// replication batches acknowledged by successors.
	redirects    *obs.Counter
	replications *obs.Counter
}

// ServerStats is a point-in-time snapshot of the server counters.
type ServerStats struct {
	Registers    uint64
	Rejoins      uint64
	Lookups      uint64
	Rejected     uint64
	Expired      uint64
	Deregisters  uint64
	Panics       uint64
	Sweeps       uint64
	SweepOnline  uint64
	SweepOffline uint64
	Redirects    uint64
	Replications uint64
}

// Stats snapshots the server counters.
func (s *Server) Stats() ServerStats {
	return ServerStats{
		Registers:    s.registers.Value(),
		Rejoins:      s.rejoins.Value(),
		Lookups:      s.lookups.Value(),
		Rejected:     s.rejected.Value(),
		Expired:      s.expired.Value(),
		Deregisters:  s.deregisters.Value(),
		Panics:       s.panics.Value(),
		Sweeps:       s.sweeps.Value(),
		SweepOnline:  s.sweepOnline.Value(),
		SweepOffline: s.sweepOffline.Value(),
		Redirects:    s.redirects.Value(),
		Replications: s.replications.Value(),
	}
}

// contain is deferred at the top of every server goroutine so a panic is
// recorded instead of taking the whole process down.
func (s *Server) contain() {
	if r := recover(); r != nil {
		s.panics.Inc()
	}
}

// NewServer binds addr on the network and starts serving. The bound
// address (Addr) is the server's LIGLOID.
func NewServer(network transport.Network, addr string, cfg ServerConfig) (*Server, error) {
	if cfg.InitialPeers <= 0 {
		cfg.InitialPeers = 5
	}
	l, err := network.Listen(addr)
	if err != nil {
		return nil, err
	}
	reg := cfg.Metrics
	if reg == nil {
		reg = obs.NewRegistry()
	}
	const sweepHelp = "Member probes per liveness sweep, by outcome."
	s := &Server{
		network:   network,
		listener:  l,
		cfg:       cfg,
		members:   make(map[uint64]*member),
		foreign:   make(map[string]RingRecord),
		metrics:   reg,
		stopProbe: make(chan struct{}),
		registers: reg.Counter("bestpeer_liglo_registers_total",
			"BPIDs issued to first-time registrants."),
		rejoins: reg.Counter("bestpeer_liglo_rejoins_total",
			"Members that reported a new address after reconnecting."),
		lookups: reg.Counter("bestpeer_liglo_lookups_total",
			"BPID-to-address resolutions served."),
		rejected: reg.Counter("bestpeer_liglo_rejected_total",
			"Registrations refused because the server was at capacity."),
		expired: reg.Counter("bestpeer_liglo_expired_total",
			"Members dropped after exceeding the offline expiry."),
		deregisters: reg.Counter("bestpeer_liglo_deregisters_total",
			"Members that announced a graceful leave and were marked offline."),
		panics: reg.Counter("bestpeer_liglo_panics_total",
			"Server goroutine panics contained."),
		sweeps: reg.Counter("bestpeer_liglo_sweeps_total",
			"Liveness sweeps completed."),
		sweepOnline:  reg.Counter("bestpeer_liglo_sweep_members_total", sweepHelp, obs.L("outcome", "online")),
		sweepOffline: reg.Counter("bestpeer_liglo_sweep_members_total", sweepHelp, obs.L("outcome", "offline")),
		redirects: reg.Counter("bestpeer_liglo_ring_redirects_total",
			"Requests redirected to the ring server owning the BPID's key."),
		replications: reg.Counter("bestpeer_liglo_ring_replications_total",
			"Record batches acknowledged by ring successors."),
	}
	s.wg.Add(1)
	go s.acceptLoop()
	if cfg.ProbeInterval > 0 {
		s.wg.Add(1)
		go s.probeLoop()
	}
	if cfg.Ring != nil {
		if err := s.startRing(); err != nil {
			_ = s.Close() // the join failure is the error worth reporting
			return nil, err
		}
	}
	return s, nil
}

// Addr returns the server's address — the LIGLOID embedded in every BPID
// it issues.
func (s *Server) Addr() string { return s.listener.Addr().String() }

// Members returns the number of registered members.
func (s *Server) Members() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.members)
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	defer s.contain()
	for {
		conn, err := s.listener.Accept()
		if err != nil {
			return
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer s.contain()
			s.handleConn(conn)
		}()
	}
}

// handleConn serves request/response exchanges on one connection until
// the client hangs up.
func (s *Server) handleConn(conn net.Conn) {
	defer conn.Close()
	wc := wire.NewConn(conn)
	for {
		req, err := wc.Recv()
		if err != nil {
			return
		}
		resp := s.dispatch(req)
		if resp == nil {
			return // unintelligible request: drop the connection
		}
		if err := wc.Send(resp); err != nil {
			return
		}
	}
}

func (s *Server) dispatch(req *wire.Envelope) *wire.Envelope {
	switch req.Kind {
	case wire.KindLigloRegister:
		r, err := decodeRegisterReq(req.Body)
		if err != nil {
			return nil
		}
		return s.handleRegister(r)
	case wire.KindLigloRejoin:
		r, err := decodeRejoinReq(req.Body)
		if err != nil {
			return nil
		}
		return s.handleRejoin(r)
	case wire.KindLigloLookup:
		r, err := decodeLookupReq(req.Body)
		if err != nil {
			return nil
		}
		return s.handleLookup(r)
	case wire.KindLigloPeers:
		r, err := decodePeersReq(req.Body)
		if err != nil {
			return nil
		}
		return s.handlePeers(r)
	case wire.KindLigloDeregister:
		r, err := decodeDeregisterReq(req.Body)
		if err != nil {
			return nil
		}
		return s.handleDeregister(r)
	case wire.KindChordLookup, wire.KindChordNotify, wire.KindChordProbe:
		if s.ring == nil {
			return nil
		}
		return s.ring.HandleEnvelope(req)
	case wire.KindRingReplicate:
		if s.ring == nil {
			return nil
		}
		m, err := decodeReplicateMsg(req.Body)
		if err != nil {
			return nil
		}
		return s.handleReplicate(m)
	default:
		return nil
	}
}

func reply(kind wire.Kind, body []byte) *wire.Envelope {
	return &wire.Envelope{Kind: kind, ID: wire.NewMsgID(), TTL: 1, Body: body}
}

func (s *Server) handleRegister(r *registerReq) *wire.Envelope {
	s.mu.Lock()
	defer s.mu.Unlock()

	if s.cfg.Capacity > 0 && len(s.members) >= s.cfg.Capacity {
		s.rejected.Inc()
		return reply(wire.KindLigloRegisterd, encodeRegisterResp(&registerResp{Err: ErrFull.Error()}))
	}
	s.nextID++
	m := &member{node: s.nextID, addr: r.Addr, online: true, lastSeen: time.Now()}
	peers := s.peerListLocked(m.node)
	s.members[m.node] = m
	s.registers.Inc()
	s.cfg.Journal.Append(obs.Event{Kind: obs.EvMemberRegistered, Peer: r.Addr})

	return reply(wire.KindLigloRegisterd, encodeRegisterResp(&registerResp{
		ID:    wire.BPID{LIGLO: s.Addr(), Node: m.node},
		Peers: peers,
	}))
}

// peerListLocked selects up to InitialPeers online members (excluding
// self) as the registrant's starting direct peers, preferring the most
// recently seen. In ring mode the locally-issued table holds only this
// server's registrants, so remaining slots are filled from replicated
// foreign records — without them a fleet spread across ring servers
// would bootstrap with zero connectivity. Caller holds s.mu.
func (s *Server) peerListLocked(exclude uint64) []PeerInfo {
	var online []*member
	for _, m := range s.members {
		if m.node != exclude && m.online {
			online = append(online, m)
		}
	}
	sort.Slice(online, func(i, j int) bool {
		if !online[i].lastSeen.Equal(online[j].lastSeen) {
			return online[i].lastSeen.After(online[j].lastSeen)
		}
		return online[i].node < online[j].node
	})
	if len(online) > s.cfg.InitialPeers {
		online = online[:s.cfg.InitialPeers]
	}
	peers := make([]PeerInfo, 0, len(online))
	for _, m := range online {
		peers = append(peers, PeerInfo{
			ID:   wire.BPID{LIGLO: s.Addr(), Node: m.node},
			Addr: m.addr,
		})
	}
	if len(peers) < s.cfg.InitialPeers && len(s.foreign) > 0 {
		ids := make([]string, 0, len(s.foreign))
		for id, rec := range s.foreign {
			if rec.Online && !rec.Departed {
				ids = append(ids, id)
			}
		}
		sort.Strings(ids)
		for _, id := range ids {
			if len(peers) >= s.cfg.InitialPeers {
				break
			}
			rec := s.foreign[id]
			peers = append(peers, PeerInfo{ID: rec.ID, Addr: rec.Addr})
		}
	}
	return peers
}

func (s *Server) handleRejoin(r *rejoinReq) *wire.Envelope {
	where, owner, key, err := s.routeID(r.ID)
	if err != nil {
		return reply(wire.KindLigloStatus, encodeRejoinResp(&rejoinResp{Err: err.Error()}))
	}
	switch where {
	case routeForeign:
		return s.foreignRejoin(r)
	case routeRedirect:
		return s.redirectReply("rejoin", owner, key)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	m, ok := s.members[r.ID.Node]
	if !ok {
		return reply(wire.KindLigloStatus, encodeRejoinResp(&rejoinResp{Err: ErrUnknown.Error()}))
	}
	cameBack := !m.online
	m.addr = r.Addr
	m.online = true
	m.departed = false // an explicit rejoin ends a graceful departure
	m.lastSeen = time.Now()
	s.rejoins.Inc()
	if cameBack {
		s.cfg.Journal.Append(obs.Event{Kind: obs.EvMemberOnline, Peer: r.Addr, Reason: "rejoin"})
	}
	return reply(wire.KindLigloStatus, encodeRejoinResp(&rejoinResp{}))
}

// handleDeregister marks a member offline immediately on its own say-so —
// a graceful leave does not have to wait for a probe sweep to time out.
// The membership record and BPID survive: the member can Rejoin later
// under the same identity. Unlike a member a sweep found offline, a
// deregistered member is pinned there — its process may stay up awaiting
// a Rejoin, and a dialable address is not consent to rejoin the overlay.
func (s *Server) handleDeregister(r *deregisterReq) *wire.Envelope {
	where, owner, key, err := s.routeID(r.ID)
	if err != nil {
		return reply(wire.KindLigloStatus, encodeDeregisterResp(&deregisterResp{Err: err.Error()}))
	}
	switch where {
	case routeForeign:
		return s.foreignDeregister(r)
	case routeRedirect:
		return s.redirectReply("deregister", owner, key)
	}
	s.mu.Lock()
	m, ok := s.members[r.ID.Node]
	if !ok {
		s.mu.Unlock()
		return reply(wire.KindLigloStatus, encodeDeregisterResp(&deregisterResp{Err: ErrUnknown.Error()}))
	}
	wasOnline := m.online
	m.online = false
	m.departed = true
	m.lastSeen = time.Now()
	addr := m.addr
	s.mu.Unlock()
	s.deregisters.Inc()
	s.cfg.Journal.Append(obs.Event{Kind: obs.EvMemberDeregistered, Peer: addr})
	if wasOnline {
		s.cfg.Journal.Append(obs.Event{Kind: obs.EvMemberOffline, Peer: addr, Reason: "deregister"})
	}
	return reply(wire.KindLigloStatus, encodeDeregisterResp(&deregisterResp{}))
}

func (s *Server) handleLookup(r *lookupReq) *wire.Envelope {
	where, owner, key, err := s.routeID(r.ID)
	if err != nil {
		return reply(wire.KindLigloStatus, encodeLookupResp(&lookupResp{Err: err.Error()}))
	}
	switch where {
	case routeForeign:
		return s.foreignLookup(r)
	case routeRedirect:
		return s.redirectReply("lookup", owner, key)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.lookups.Inc()
	m, ok := s.members[r.ID.Node]
	if !ok {
		return reply(wire.KindLigloStatus, encodeLookupResp(&lookupResp{Found: false}))
	}
	return reply(wire.KindLigloStatus, encodeLookupResp(&lookupResp{
		Found:  true,
		Addr:   m.addr,
		Online: m.online,
	}))
}

// handlePeers serves a fresh list of online members, excluding the
// requester, most-recently-seen first. This is how a member that lost
// peers encounters new ones without re-registering.
func (s *Server) handlePeers(r *peersReq) *wire.Envelope {
	s.mu.Lock()
	defer s.mu.Unlock()
	exclude := uint64(0)
	if r.Self.LIGLO == s.Addr() {
		exclude = r.Self.Node
	}
	saved := s.cfg.InitialPeers
	if r.Max > 0 {
		s.cfg.InitialPeers = r.Max
	}
	peers := s.peerListLocked(exclude)
	s.cfg.InitialPeers = saved
	return reply(wire.KindLigloPeersList, encodePeersResp(&peersResp{Peers: peers}))
}

// probeLoop periodically validates member addresses — members are not
// obliged to announce disconnection, so LIGLO checks for itself.
func (s *Server) probeLoop() {
	defer s.wg.Done()
	defer s.contain()
	ticker := time.NewTicker(s.cfg.ProbeInterval)
	defer ticker.Stop()
	for {
		select {
		case <-s.stopProbe:
			return
		case <-ticker.C:
			s.CheckNow()
		}
	}
}

// CheckNow probes every member's address once and updates its online
// status. Gracefully-departed members are not probed — their process
// answering the door is not a rejoin — but they still age toward
// expiry. Returns how many members are online after the sweep.
func (s *Server) CheckNow() int {
	s.mu.Lock()
	type target struct {
		node uint64
		addr string
	}
	targets := make([]target, 0, len(s.members))
	for _, m := range s.members {
		if m.departed {
			continue
		}
		targets = append(targets, target{m.node, m.addr})
	}
	s.mu.Unlock()

	alive := make(map[uint64]bool, len(targets))
	for _, t := range targets {
		conn, err := s.network.Dial(t.addr)
		if err == nil {
			_ = conn.Close() // liveness probe: the dial succeeding is the signal
			alive[t.node] = true
		}
	}

	s.mu.Lock()
	online := 0
	offline := 0
	now := time.Now()
	var transitions []obs.Event
	for node, m := range s.members {
		if m.departed {
			if s.cfg.ExpireAfter > 0 && now.Sub(m.lastSeen) > s.cfg.ExpireAfter {
				delete(s.members, node)
				s.expired.Inc()
				transitions = append(transitions, obs.Event{Kind: obs.EvMemberExpired, Peer: m.addr})
			}
			continue
		}
		was := m.online
		if alive[node] {
			m.online = true
			m.lastSeen = now
			online++
			if !was {
				transitions = append(transitions, obs.Event{Kind: obs.EvMemberOnline, Peer: m.addr, Reason: "probe"})
			}
			continue
		}
		m.online = false
		offline++
		if was {
			transitions = append(transitions, obs.Event{Kind: obs.EvMemberOffline, Peer: m.addr, Reason: "probe"})
		}
		if s.cfg.ExpireAfter > 0 && now.Sub(m.lastSeen) > s.cfg.ExpireAfter {
			delete(s.members, node)
			s.expired.Inc()
			transitions = append(transitions, obs.Event{Kind: obs.EvMemberExpired, Peer: m.addr})
		}
	}
	s.mu.Unlock()
	for _, e := range transitions {
		s.cfg.Journal.Append(e)
	}
	s.sweeps.Inc()
	s.sweepOnline.Add(uint64(online))
	s.sweepOffline.Add(uint64(offline))
	return online
}

// Online reports the server's current belief about a member.
func (s *Server) Online(id wire.BPID) (bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if id.LIGLO != s.Addr() {
		return false, ErrWrongHome
	}
	m, ok := s.members[id.Node]
	if !ok {
		return false, fmt.Errorf("%w: %v", ErrUnknown, id)
	}
	return m.online, nil
}

// Close stops the server and waits for its goroutines.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()
	close(s.stopProbe)
	if s.ring != nil {
		_ = s.ring.Close() // chord Close is idempotent and never fails meaningfully
	}
	// Unblocks the accept loop; its own error is the shutdown signal.
	_ = s.listener.Close()
	s.wg.Wait()
	return nil
}
