package storm

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"testing/quick"
)

// walStore opens a store with a WAL in dir. "Crashing" it means
// simply abandoning it without Close: dirty pages are lost, the log
// survives.
func walStore(t *testing.T, dir string) *Store {
	t.Helper()
	s, err := Open(filepath.Join(dir, "w.storm"), Options{
		WALPath: filepath.Join(dir, "w.wal"),
		WALSync: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestWALRecoversUnflushedPuts(t *testing.T) {
	dir := t.TempDir()
	s := walStore(t, dir)
	for i := 0; i < 40; i++ {
		if _, err := s.Put(obj(fmt.Sprintf("o%02d", i), []string{"k"}, 900)); err != nil {
			t.Fatal(err)
		}
	}
	// Crash: close only the file descriptors, skipping FlushAll, so dirty
	// buffer-pool pages never reach disk.
	s.wal.Close()
	s.file.Close()

	r := walStore(t, dir)
	defer r.Close()
	if r.Len() != 40 {
		t.Fatalf("recovered Len = %d, want 40", r.Len())
	}
	got, err := r.Get("o31")
	if err != nil || len(got.Data) != 900 {
		t.Fatalf("recovered object: %v %v", got, err)
	}
}

func TestWALRecoversDeletes(t *testing.T) {
	dir := t.TempDir()
	s := walStore(t, dir)
	for i := 0; i < 10; i++ {
		s.Put(obj(fmt.Sprintf("d%d", i), nil, 64))
	}
	if err := s.Checkpoint(); err != nil { // puts now durable in pages
		t.Fatal(err)
	}
	for i := 0; i < 10; i += 2 {
		if err := s.Delete(fmt.Sprintf("d%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	s.Put(obj("after", nil, 64))
	// Crash.
	s.wal.Close()
	s.file.Close()

	r := walStore(t, dir)
	defer r.Close()
	if r.Len() != 6 { // 5 survivors + "after"
		t.Fatalf("recovered Len = %d, want 6", r.Len())
	}
	if r.Has("d4") || !r.Has("d5") || !r.Has("after") {
		t.Fatalf("recovered contents wrong: %v", r.Names())
	}
}

func TestWALReplaceSurvivesCrash(t *testing.T) {
	dir := t.TempDir()
	s := walStore(t, dir)
	s.Put(obj("x", []string{"old"}, 100))
	s.Put(obj("x", []string{"new"}, 2000))
	s.wal.Close()
	s.file.Close()

	r := walStore(t, dir)
	defer r.Close()
	got, err := r.Get("x")
	if err != nil || len(got.Data) != 2000 || got.Keywords[0] != "new" {
		t.Fatalf("recovered replacement: %+v %v", got, err)
	}
	if r.Len() != 1 {
		t.Fatalf("replacement duplicated: %d", r.Len())
	}
}

func TestWALTornTailIgnored(t *testing.T) {
	dir := t.TempDir()
	s := walStore(t, dir)
	s.Put(obj("good", nil, 64))
	s.wal.Close()
	s.file.Close()

	// Append garbage to the log: a torn record from a crash mid-write.
	f, err := os.OpenFile(filepath.Join(dir, "w.wal"), os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte{0x00, 0x00, 0x01, 0x00, 0xde, 0xad}) // length says 256, body truncated
	f.Close()

	r := walStore(t, dir)
	defer r.Close()
	if !r.Has("good") || r.Len() != 1 {
		t.Fatalf("torn tail corrupted recovery: %v", r.Names())
	}
}

func TestWALCorruptRecordStopsReplay(t *testing.T) {
	dir := t.TempDir()
	s := walStore(t, dir)
	s.Put(obj("first", nil, 64))
	s.Put(obj("second", nil, 64))
	sz, err := s.wal.Size()
	if err != nil || sz == 0 {
		t.Fatalf("wal size: %d %v", sz, err)
	}
	s.wal.Close()
	s.file.Close()

	// Flip a byte inside the second record's payload.
	path := filepath.Join(dir, "w.wal")
	raw, _ := os.ReadFile(path)
	raw[len(raw)-3] ^= 0xFF
	os.WriteFile(path, raw, 0o644)

	r := walStore(t, dir)
	defer r.Close()
	// First record replays; the corrupted one is treated as torn tail.
	if !r.Has("first") {
		t.Fatal("first record lost")
	}
	if r.Has("second") {
		t.Fatal("corrupt record applied")
	}
}

func TestCheckpointTruncatesLog(t *testing.T) {
	dir := t.TempDir()
	s := walStore(t, dir)
	defer s.Close()
	for i := 0; i < 20; i++ {
		s.Put(obj(fmt.Sprintf("c%d", i), nil, 128))
	}
	before, _ := s.wal.Size()
	if before == 0 {
		t.Fatal("log empty before checkpoint")
	}
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	after, _ := s.wal.Size()
	if after != 0 {
		t.Fatalf("log not truncated: %d bytes", after)
	}
	// Store still fully usable.
	if _, err := s.Put(obj("post", nil, 64)); err != nil {
		t.Fatal(err)
	}
	if s.Len() != 21 {
		t.Fatalf("Len = %d", s.Len())
	}
}

func TestWALCleanCloseLeavesEmptyLog(t *testing.T) {
	dir := t.TempDir()
	s := walStore(t, dir)
	s.Put(obj("z", nil, 64))
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	st, err := os.Stat(filepath.Join(dir, "w.wal"))
	if err != nil {
		t.Fatal(err)
	}
	if st.Size() != 0 {
		t.Fatalf("log not empty after clean close: %d bytes", st.Size())
	}
	// Reopen sees everything.
	r := walStore(t, dir)
	defer r.Close()
	if !r.Has("z") {
		t.Fatal("object lost across clean close")
	}
}

func TestWALWithPersistentCatalog(t *testing.T) {
	// Both extensions together: WAL replay must keep the catalog in sync.
	dir := t.TempDir()
	open := func() *Store {
		s, err := Open(filepath.Join(dir, "wc.storm"), Options{
			WALPath:           filepath.Join(dir, "wc.wal"),
			WALSync:           true,
			PersistentCatalog: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	s := open()
	for i := 0; i < 30; i++ {
		s.Put(obj(fmt.Sprintf("b%02d", i), nil, 500))
	}
	s.Delete("b07")
	// Crash.
	s.wal.Close()
	s.file.Close()

	r := open()
	defer r.Close()
	if r.Len() != 29 {
		t.Fatalf("Len = %d", r.Len())
	}
	if r.Has("b07") || !r.Has("b29") {
		t.Fatalf("contents wrong after combined recovery")
	}
	// Catalog agrees with the map.
	if r.catalog != nil {
		n, err := r.catalog.Len()
		if err != nil || n != 29 {
			t.Fatalf("catalog entries = %d, %v", n, err)
		}
	}
}

func TestWALDeleteMissingNotLogged(t *testing.T) {
	dir := t.TempDir()
	s := walStore(t, dir)
	defer s.Close()
	if err := s.Delete("ghost"); err == nil {
		t.Fatal("delete of missing succeeded")
	}
	if s.wal.Appended != 0 {
		t.Fatalf("missing delete was logged (%d records)", s.wal.Appended)
	}
}

// Property: for any sequence of acknowledged operations interleaved with
// crashes, recovery restores exactly the shadow state — acknowledged
// writes are never lost and phantom objects never appear.
func TestWALCrashRecoveryShadowModel(t *testing.T) {
	f := func(seed int64) bool {
		dir := t.TempDir()
		openStore := func() *Store {
			s, err := Open(filepath.Join(dir, "c.storm"), Options{
				BufferFrames: 4, // tiny pool: maximal dirty-page exposure
				WALPath:      filepath.Join(dir, "c.wal"),
				WALSync:      true,
			})
			if err != nil {
				t.Fatalf("open: %v", err)
			}
			return s
		}
		s := openStore()
		rng := rand.New(rand.NewSource(seed))
		shadow := make(map[string]int) // name -> data size
		for step := 0; step < 160; step++ {
			switch rng.Intn(10) {
			case 0: // crash and recover
				s.Abandon()
				s = openStore()
				if s.Len() != len(shadow) {
					t.Logf("seed %d step %d: recovered %d, want %d", seed, step, s.Len(), len(shadow))
					return false
				}
			case 1, 2: // delete
				name := fmt.Sprintf("o%02d", rng.Intn(30))
				err := s.Delete(name)
				_, existed := shadow[name]
				if existed != (err == nil) {
					return false
				}
				delete(shadow, name)
			default: // put
				name := fmt.Sprintf("o%02d", rng.Intn(30))
				size := 50 + rng.Intn(1500)
				if _, err := s.Put(obj(name, []string{"k"}, size)); err != nil {
					return false
				}
				shadow[name] = size
			}
		}
		// Final crash + verify everything.
		s.Abandon()
		s = openStore()
		defer s.Close()
		if s.Len() != len(shadow) {
			return false
		}
		for name, size := range shadow {
			got, err := s.Get(name)
			if err != nil || len(got.Data) != size {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 8}); err != nil {
		t.Fatal(err)
	}
}
