package obs

import (
	"fmt"
	"sync"
	"testing"
)

func TestJournalSinceCursor(t *testing.T) {
	j := NewJournal("n0", 16)
	for i := 0; i < 5; i++ {
		j.Append(Event{Kind: EvQueryIssued, Query: fmt.Sprintf("q%d", i)})
	}

	events, next, missed := j.Since(0, 0)
	if len(events) != 5 || missed != 0 || next != 5 {
		t.Fatalf("Since(0) = %d events, next %d, missed %d; want 5, 5, 0", len(events), next, missed)
	}
	for i, e := range events {
		if e.Seq != uint64(i) {
			t.Errorf("event %d has seq %d", i, e.Seq)
		}
		if e.Node != "n0" {
			t.Errorf("event %d not stamped with node: %+v", i, e)
		}
		if e.At.IsZero() {
			t.Errorf("event %d not timestamped", i)
		}
	}

	// Resume from the returned cursor: only newer events appear.
	j.Append(Event{Kind: EvQueryCompleted, Query: "q5"})
	events, next, missed = j.Since(next, 0)
	if len(events) != 1 || events[0].Query != "q5" || missed != 0 {
		t.Fatalf("resume read = %+v (missed %d), want just q5", events, missed)
	}
	// Reading again from the new cursor is empty, not an error.
	if events, _, _ = j.Since(next, 0); len(events) != 0 {
		t.Fatalf("read past end returned %d events", len(events))
	}

	// max limits a page; the cursor advances only past what was returned.
	events, next, _ = j.Since(0, 2)
	if len(events) != 2 || next != 2 {
		t.Fatalf("Since(0, max=2) = %d events, next %d; want 2, 2", len(events), next)
	}
}

func TestJournalOverflowAccounting(t *testing.T) {
	j := NewJournal("n0", 4)
	for i := 0; i < 10; i++ {
		j.Append(Event{Kind: EvAgentDropped, Reason: "expired"})
	}
	if j.Total() != 10 {
		t.Fatalf("Total = %d, want 10", j.Total())
	}
	if j.Evicted() != 6 {
		t.Fatalf("Evicted = %d, want 6", j.Evicted())
	}
	// A reader starting at zero missed everything the ring evicted.
	events, next, missed := j.Since(0, 0)
	if missed != 6 {
		t.Fatalf("missed = %d, want 6", missed)
	}
	if len(events) != 4 || events[0].Seq != 6 || next != 10 {
		t.Fatalf("retained window = %d events from seq %d, next %d; want 4 from 6, next 10",
			len(events), events[0].Seq, next)
	}
	// A reader inside the retained window misses nothing.
	if _, _, missed = j.Since(8, 0); missed != 0 {
		t.Fatalf("in-window read missed %d", missed)
	}
	// The page payload carries the same accounting.
	page := j.Page(0, 0)
	if page.Missed != 6 || page.Total != 10 || page.Evicted != 6 || page.Node != "n0" {
		t.Fatalf("page accounting = %+v", page)
	}
}

// TestJournalConcurrent hammers one journal from concurrent writers
// while readers page through it; run under -race. Every appended event
// must be either observed or accounted as missed — never silently gone.
func TestJournalConcurrent(t *testing.T) {
	const writers, perWriter = 8, 500
	j := NewJournal("n0", 64)

	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				j.Append(Event{Kind: EvMessageDropped, Peer: fmt.Sprintf("w%d", w), Count: i})
			}
		}()
	}

	// A paging reader runs concurrently; its counts are validated after
	// the writers drain (mid-flight totals are racy by nature).
	done := make(chan struct{})
	go func() {
		defer close(done)
		var cursor uint64
		for seen := uint64(0); seen < writers*perWriter; {
			events, next, missed := j.Since(cursor, 16)
			seen += uint64(len(events)) + missed
			cursor = next
		}
	}()
	wg.Wait()
	<-done

	if total := j.Total(); total != writers*perWriter {
		t.Fatalf("Total = %d, want %d", total, writers*perWriter)
	}
	// Final read: observed + missed must exactly cover all appends.
	events, next, missed := j.Since(0, 0)
	if got := uint64(len(events)) + missed; got != writers*perWriter {
		t.Fatalf("observed %d + missed %d != appended %d", len(events), missed, writers*perWriter)
	}
	if next != j.Total() {
		t.Fatalf("next = %d, want %d", next, j.Total())
	}
	// Sequence numbers in the retained window are dense and ordered.
	for i := 1; i < len(events); i++ {
		if events[i].Seq != events[i-1].Seq+1 {
			t.Fatalf("gap between seq %d and %d", events[i-1].Seq, events[i].Seq)
		}
	}
}

func TestJournalNilSafe(t *testing.T) {
	var j *Journal
	j.Append(Event{Kind: EvJoined}) // must not panic
	j.SetNode("x")
	j.SetLogger(nil)
	if j.Total() != 0 || j.Evicted() != 0 || j.Node() != "" {
		t.Fatal("nil journal reports non-zero state")
	}
	if events, next, missed := j.Since(3, 0); events != nil || next != 3 || missed != 0 {
		t.Fatalf("nil journal Since = %v, %d, %d", events, next, missed)
	}
}
