package storm

import (
	"fmt"
	"math/rand"
	"path/filepath"
	"sort"
	"testing"
	"testing/quick"
)

func indexedStore(t *testing.T) *IndexedStore {
	t.Helper()
	s := tempStore(t, Options{})
	ix, err := NewIndexedStore(s)
	if err != nil {
		t.Fatal(err)
	}
	return ix
}

func TestIndexLookup(t *testing.T) {
	s := indexedStore(t)
	s.Put(&Object{Name: "a", Keywords: []string{"Jazz", "music"}, Data: []byte("x")})
	s.Put(&Object{Name: "b", Keywords: []string{"jazz"}, Data: []byte("y")})
	s.Put(&Object{Name: "c", Keywords: []string{"rock"}, Data: []byte("z")})

	got := s.Index().Lookup("JAZZ")
	if len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Fatalf("Lookup(JAZZ) = %v", got)
	}
	if kws := s.Index().Keywords(); len(kws) != 3 {
		t.Fatalf("Keywords = %v", kws)
	}
}

func TestIndexedMatchAgreesWithScan(t *testing.T) {
	s := indexedStore(t)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 200; i++ {
		s.Put(&Object{
			Name:     fmt.Sprintf("obj-%03d", i),
			Keywords: []string{fmt.Sprintf("kw%d", rng.Intn(9))},
			Data:     []byte{byte(i)},
		})
	}
	queries := []string{"kw0", "kw5", "KW7", "obj-01", "missing", ""}
	for _, q := range queries {
		viaIndex, err := s.Match(q)
		if err != nil {
			t.Fatal(err)
		}
		viaScan, err := s.Store.Match(q)
		if err != nil {
			t.Fatal(err)
		}
		in := names(viaIndex)
		sc := names(viaScan)
		if len(in) != len(sc) {
			t.Fatalf("query %q: index %d hits, scan %d", q, len(in), len(sc))
		}
		for i := range in {
			if in[i] != sc[i] {
				t.Fatalf("query %q: index %v != scan %v", q, in, sc)
			}
		}
	}
}

func names(objs []*Object) []string {
	out := make([]string, len(objs))
	for i, o := range objs {
		out[i] = o.Name
	}
	sort.Strings(out)
	return out
}

func TestIndexMaintainedAcrossPutDelete(t *testing.T) {
	s := indexedStore(t)
	s.Put(&Object{Name: "x", Keywords: []string{"old"}, Data: []byte("1")})
	// Replacement changes keywords: old posting must vanish.
	s.Put(&Object{Name: "x", Keywords: []string{"new"}, Data: []byte("2")})
	if got := s.Index().Lookup("old"); len(got) != 0 {
		t.Fatalf("stale posting: %v", got)
	}
	if got := s.Index().Lookup("new"); len(got) != 1 {
		t.Fatalf("missing posting: %v", got)
	}
	if err := s.Delete("x"); err != nil {
		t.Fatal(err)
	}
	if got := s.Index().Lookup("new"); len(got) != 0 {
		t.Fatalf("posting survived delete: %v", got)
	}
	if err := s.Delete("x"); err == nil {
		t.Fatal("double delete succeeded")
	}
}

func TestIndexRebuildAtOpen(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "ix.storm")
	s, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	s.Put(&Object{Name: "persisted", Keywords: []string{"found"}, Data: []byte("d")})
	s.Close()

	r, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	ix, err := NewIndexedStore(r)
	if err != nil {
		t.Fatal(err)
	}
	if got := ix.Index().Lookup("found"); len(got) != 1 || got[0] != "persisted" {
		t.Fatalf("rebuilt index = %v", got)
	}
}

// Property: under random Put/Delete sequences, the indexed Match always
// equals the scanning Match, and the store equals a shadow map.
func TestIndexedStoreShadowModel(t *testing.T) {
	f := func(seed int64) bool {
		s, err := Open(filepath.Join(t.TempDir(), "shadow.storm"), Options{BufferFrames: 4})
		if err != nil {
			return false
		}
		defer s.Close()
		ix, err := NewIndexedStore(s)
		if err != nil {
			return false
		}
		rng := rand.New(rand.NewSource(seed))
		shadow := make(map[string]string) // name -> keyword
		for op := 0; op < 120; op++ {
			name := fmt.Sprintf("o%d", rng.Intn(25))
			switch rng.Intn(3) {
			case 0, 1: // put
				kw := fmt.Sprintf("kw%d", rng.Intn(5))
				if _, err := ix.Put(&Object{Name: name, Keywords: []string{kw},
					Data: []byte(name)}); err != nil {
					return false
				}
				shadow[name] = kw
			case 2: // delete
				err := ix.Delete(name)
				_, existed := shadow[name]
				if existed != (err == nil) {
					return false
				}
				delete(shadow, name)
			}
		}
		if ix.Len() != len(shadow) {
			return false
		}
		for k := 0; k < 5; k++ {
			q := fmt.Sprintf("kw%d", k)
			want := 0
			for _, kw := range shadow {
				if kw == q {
					want++
				}
			}
			got, err := ix.Match(q)
			if err != nil || len(got) != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}
