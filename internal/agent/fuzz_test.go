package agent

import (
	"testing"

	"bestpeer/internal/storm"
	"bestpeer/internal/wire"
)

// FuzzDecodePacket: hostile agent packets must never panic; valid ones
// must re-encode faithfully.
func FuzzDecodePacket(f *testing.F) {
	a := &KeywordAgent{Query: "q"}
	st, _ := a.State()
	f.Add(EncodePacket(&Packet{Class: KeywordClass, State: st, Base: "b", Mode: 1}))
	f.Add([]byte{})
	f.Add([]byte{0x01, 0xFF})

	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := DecodePacket(data)
		if err != nil {
			return
		}
		back, err := DecodePacket(EncodePacket(p))
		if err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
		if back.Class != p.Class || back.Mode != p.Mode || back.Base != p.Base {
			t.Fatal("round trip changed packet")
		}
	})
}

// FuzzDecodeResults: result batches from hostile peers must never panic.
func FuzzDecodeResults(f *testing.F) {
	f.Add(EncodeResults([]Result{{Name: "n", Data: []byte("d")}}, 2,
		wire.BPID{LIGLO: "l", Node: 1}, "addr"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		_, _ = DecodeResults(data)
	})
}

// FuzzCompileFilter: arbitrary filter expressions must either compile or
// fail cleanly, and compiled predicates must be callable.
func FuzzCompileFilter(f *testing.F) {
	for _, seed := range []string{
		"keyword=jazz & size>512",
		"name~report | (keyword=finance & !data~draft)",
		"kind=active",
		"(((",
		"size>",
		"",
		`name="quoted value"`,
	} {
		f.Add(seed)
	}
	obj := &storm.Object{Name: "x", Keywords: []string{"k"}, Data: []byte("d")}
	f.Fuzz(func(t *testing.T, expr string) {
		pred, err := CompileFilter(expr)
		if err != nil {
			return
		}
		_ = pred(obj) // must not panic
	})
}
